package sessmux_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"convexagreement/internal/sessmux"
	"convexagreement/internal/sim"
	"convexagreement/internal/testutil"
	"convexagreement/internal/transport"
)

// echoRounds runs `rounds` broadcast-echo virtual rounds over net and
// checks each round delivers exactly one correctly-labelled message per
// participant.
func echoRounds(net transport.Net, sid uint64, rounds int) error {
	for r := 0; r < rounds; r++ {
		payload := fmt.Sprintf("s%d-r%d-p%d", sid, r, net.ID())
		in, err := transport.ExchangeAll(net, "echo", []byte(payload))
		if err != nil {
			return err
		}
		if len(in) != net.N() {
			return fmt.Errorf("session %d round %d: %d messages, want %d", sid, r, len(in), net.N())
		}
		for j, msg := range in {
			want := fmt.Sprintf("s%d-r%d-p%d", sid, r, j)
			if string(msg.Payload) != want {
				return fmt.Errorf("session %d cross-talk: got %q want %q", sid, msg.Payload, want)
			}
		}
	}
	return nil
}

// TestSessionsShareTicks runs two sessions of different sizes and
// lifetimes over one base: session 7 spans all 4 parties for 3 virtual
// rounds, session 9 spans parties 0..1 for 5. Parties keep the tick clock
// with Idle once their sessions end; total physical rounds must be
// max(3,5), not the sum — the round-sharing that makes the mux a mux.
func TestSessionsShareTicks(t *testing.T) {
	const n = 4
	res, err := testutil.Run(sim.Config{N: n, T: 1}, nil,
		func(env *sim.Env) (int, error) {
			m := sessmux.New(env)
			if env.ID() >= 2 {
				// Parties 2,3 run only session 7 (3 ticks), then keep the
				// clock for peers' session 9 with two Idle ticks.
				if err := m.Run(7, 4, 1, func(net transport.Net) error {
					return echoRounds(net, 7, 3)
				}); err != nil {
					return 0, err
				}
				for r := 0; r < 2; r++ {
					if err := m.Idle(); err != nil {
						return 0, err
					}
				}
				return 1, nil
			}
			// Both sessions must start on the same tick: open before driving.
			s7, err := m.Open(7, 4, 1)
			if err != nil {
				return 0, err
			}
			s9, err := m.Open(9, 2, 0)
			if err != nil {
				return 0, err
			}
			var wg sync.WaitGroup
			errs := make([]error, 2)
			wg.Add(2)
			go func() {
				defer wg.Done()
				defer s7.Close()
				errs[0] = echoRounds(s7, 7, 3)
			}()
			go func() {
				defer wg.Done()
				defer s9.Close()
				errs[1] = echoRounds(s9, 9, 5)
			}()
			wg.Wait()
			for _, e := range errs {
				if e != nil {
					return 0, e
				}
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Rounds != 5 {
		t.Errorf("physical rounds = %d, want 5 (max of session lengths)", res.Report.Rounds)
	}
}

// TestIdleKeepsClock: a party outside every session still ticks in lock
// step via Idle, and sees none of the traffic.
func TestIdleKeepsClock(t *testing.T) {
	const n = 3
	_, err := testutil.Run(sim.Config{N: n, T: 0}, nil,
		func(env *sim.Env) (int, error) {
			m := sessmux.New(env)
			if env.ID() == 2 {
				for r := 0; r < 4; r++ {
					if err := m.Idle(); err != nil {
						return 0, err
					}
				}
				return 1, nil
			}
			return 1, m.Run(1, 2, 0, func(net transport.Net) error {
				return echoRounds(net, 1, 4)
			})
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCloseIsOmission: party 0 closes session 5 after one round; the
// remaining participants keep running it and simply stop hearing from
// party 0 — sibling session 6 is untouched on every party.
func TestCloseIsOmission(t *testing.T) {
	const n = 4
	_, err := testutil.Run(sim.Config{N: n, T: 1}, nil,
		func(env *sim.Env) (int, error) {
			m := sessmux.New(env)
			s6, err := m.Open(6, 4, 1)
			if err != nil {
				return 0, err
			}
			s5, err := m.Open(5, 4, 1)
			if err != nil {
				return 0, err
			}
			var wg sync.WaitGroup
			errs := make([]error, 2)
			wg.Add(2)
			go func() {
				defer wg.Done()
				defer s6.Close()
				errs[0] = echoRounds(s6, 6, 4)
			}()
			go func() {
				defer wg.Done()
				defer s5.Close()
				errs[1] = func(net transport.Net) error {
					rounds := 4
					if net.ID() == 0 {
						rounds = 1 // early local exit
					}
					for r := 0; r < rounds; r++ {
						in, err := transport.ExchangeAll(net, "e", []byte{byte(r)})
						if err != nil {
							return err
						}
						want := net.N()
						if r >= 1 {
							want-- // party 0 has left: omission, not teardown
						}
						if len(in) != want {
							return fmt.Errorf("session 5 round %d: %d messages, want %d", r, len(in), want)
						}
					}
					return nil
				}(s5)
			}()
			wg.Wait()
			for _, e := range errs {
				if e != nil {
					return 0, e
				}
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubsetSessionDropsOutsiders: packets addressed outside the session
// are dropped at the merge, and messages from non-participants (which an
// honest mux never produces) would be dropped at demux — here we check
// the send side: a 2-party session over a 4-party base never leaks to
// parties 2..3.
func TestSubsetSessionDropsOutsiders(t *testing.T) {
	const n = 4
	_, err := testutil.Run(sim.Config{N: n, T: 1}, nil,
		func(env *sim.Env) (int, error) {
			m := sessmux.New(env)
			if env.ID() >= 2 {
				for r := 0; r < 2; r++ {
					if err := m.Idle(); err != nil {
						return 0, err
					}
				}
				return 1, nil
			}
			return 1, m.Run(3, 2, 0, func(net transport.Net) error {
				for r := 0; r < 2; r++ {
					out := []transport.Packet{
						{To: 0, Tag: "t", Payload: []byte{1}},
						{To: 1, Tag: "t", Payload: []byte{2}},
						{To: 3, Tag: "t", Payload: []byte{3}}, // outside the session: dropped
					}
					in, err := net.Exchange(out)
					if err != nil {
						return err
					}
					if len(in) != 2 {
						return fmt.Errorf("round %d: %d messages, want 2", r, len(in))
					}
				}
				return nil
			})
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpenValidation exercises every Open precondition.
func TestOpenValidation(t *testing.T) {
	_, err := testutil.Run(sim.Config{N: 4, T: 1}, nil,
		func(env *sim.Env) (int, error) {
			m := sessmux.New(env)
			for _, tc := range []struct {
				sid  uint64
				n, t int
				want string
			}{
				{1, 0, 0, "outside"},
				{1, 5, 1, "outside"},
				{1, 4, 2, "3t < n"},
				{1, 4, -1, "3t < n"},
			} {
				if _, err := m.Open(tc.sid, tc.n, tc.t); err == nil || !strings.Contains(err.Error(), tc.want) {
					return 0, fmt.Errorf("Open(%d,%d,%d) = %v, want %q", tc.sid, tc.n, tc.t, err, tc.want)
				}
			}
			// Non-participant: parties 2,3 cannot open a 2-party session.
			if _, err := m.Open(2, 2, 0); env.ID() >= 2 {
				if err == nil || !strings.Contains(err.Error(), "not a participant") {
					return 0, fmt.Errorf("non-participant Open = %v", err)
				}
			} else if err != nil {
				return 0, err
			}
			s, err := m.Open(8, 4, 1)
			if err != nil {
				return 0, err
			}
			if _, err := m.Open(8, 4, 1); err == nil || !strings.Contains(err.Error(), "already open") {
				return 0, fmt.Errorf("dup Open = %v", err)
			}
			s.Close()
			if _, err := m.Open(8, 4, 1); err == nil || !strings.Contains(err.Error(), "already used") {
				return 0, fmt.Errorf("reuse Open = %v", err)
			}
			if _, err := s.Exchange(nil); err != sessmux.ErrClosed {
				return 0, fmt.Errorf("Exchange on closed session = %v", err)
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStatsCounters: ticks, packets, and the copy/reference split on a
// plain (sim) base — everything goes through the copying merge there.
func TestStatsCounters(t *testing.T) {
	const n = 3
	res, err := testutil.Run(sim.Config{N: n, T: 0}, nil,
		func(env *sim.Env) (sessmux.Stats, error) {
			m := sessmux.New(env)
			err := m.Run(1, 3, 0, func(net transport.Net) error {
				return echoRounds(net, 1, 2)
			})
			return m.Stats(), err
		})
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range res.Outputs {
		if st.Ticks != 2 {
			t.Errorf("party %d: Ticks = %d, want 2", id, st.Ticks)
		}
		if st.Packets != 2*n {
			t.Errorf("party %d: Packets = %d, want %d", id, st.Packets, 2*n)
		}
		if st.BytesCopied == 0 || st.BytesReferenced != 0 {
			t.Errorf("party %d: copied=%d referenced=%d on a plain base", id, st.BytesCopied, st.BytesReferenced)
		}
	}
}
