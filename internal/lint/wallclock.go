package lint

import (
	"go/ast"
	"go/types"
)

// wallclock: wall-clock reads inside round-driven packages. The
// simulator, the protocols, and the experiment harness live entirely in
// logical time — the round counter is the clock the paper's Δ-synchrony
// abstracts away — so time.Now/Since/After in those packages either
// leaks nondeterminism into replayed state or silently couples a
// protocol decision to scheduler latency. Real-time packages (tcpnet,
// supervisor, faultnet) and drivers are exempted by config, not by the
// analyzer.
var wallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock reads inside round-driven packages (logical rounds are the only clock)",
	Run:  runWallclock,
}

// wallclockBanned are the package time functions that observe or schedule
// against real time. Conversions and constructors over durations
// (time.Duration arithmetic, time.Unix for decoding recorded data) are
// deliberately absent.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Sleep":     true,
}

func runWallclock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if funcPkgPath(fn) != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if !wallclockBanned[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in a round-driven package; the logical round counter is the only clock here", fn.Name())
			return true
		})
	}
}
