package experiments

import (
	"fmt"
	"math"
	"math/rand"

	ca "convexagreement"
)

// E3Rounds measures round complexity as n grows at fixed ℓ: Π_ℤ runs in
// O(n log n) rounds (O(log n) iterations, each dominated by the O(n)-round
// phase-king BA), HIGHCOSTCA in O(n) and broadcast-CA in O(n²) (n
// sequential broadcasts of O(n) rounds each).
func E3Rounds(quick bool) Table {
	ell := 1 << 10
	ns := []int{4, 7, 10, 13, 16}
	if quick {
		ns = []int{4, 7, 10}
	}
	tbl := Table{
		ID:     "E3",
		Title:  fmt.Sprintf("Round complexity vs n at ℓ=%d bits", ell),
		Claim:  "Cor 2: ROUNDS(Π_Z) = O(n log n); Thm 3: ROUNDS(HIGHCOSTCA) = O(n); broadcast baseline O(n²)",
		Header: []string{"n", "t", "optimal_rounds", "opt/(n·log2n)", "highcost_rounds", "hc/n", "broadcast_rounds", "bc/n^2"},
	}
	rng := rand.New(rand.NewSource(3))
	for _, n := range ns {
		t := defaultT(n)
		inputs := randInputs(rng, n, ell)
		opt := mustAgree(inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 3})
		hc := mustAgree(inputs, ca.Options{Protocol: ca.ProtoHighCost, Seed: 3})
		bc := mustAgree(inputs, ca.Options{Protocol: ca.ProtoBroadcast, Seed: 3})
		nlogn := float64(n) * log2(float64(n))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%d", opt.Rounds),
			fmt.Sprintf("%.1f", float64(opt.Rounds)/nlogn),
			fmt.Sprintf("%d", hc.Rounds),
			fmt.Sprintf("%.1f", float64(hc.Rounds)/float64(n)),
			fmt.Sprintf("%d", bc.Rounds),
			fmt.Sprintf("%.2f", float64(bc.Rounds)/float64(n*n)),
		})
	}
	return tbl
}

// E8HighCostCA reproduces Theorem 3 in isolation: BITS(HIGHCOSTCA) = O(ℓn³)
// and ROUNDS = O(n). The bits column should grow ≈ (n'/n)³ between rows and
// the per-ℓ column should stay flat when ℓ doubles.
func E8HighCostCA(quick bool) Table {
	ns := []int{4, 7, 10, 13}
	if quick {
		ns = []int{4, 7, 10}
	}
	ells := []int{1 << 11, 1 << 12}
	tbl := Table{
		ID:     "E8",
		Title:  "HIGHCOSTCA cost scaling",
		Claim:  "Thm 3: BITS = O(ℓ·n³), ROUNDS = O(n)",
		Header: []string{"n", "ell_bits", "honest_bits", "bits/(ell·n^3)", "rounds", "rounds/n"},
	}
	rng := rand.New(rand.NewSource(8))
	for _, n := range ns {
		for _, ell := range ells {
			inputs := randInputs(rng, n, ell)
			res := mustAgree(inputs, ca.Options{Protocol: ca.ProtoHighCost, Seed: 8})
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", ell),
				fmtBits(res.HonestBits),
				fmt.Sprintf("%.3f", float64(res.HonestBits)/(float64(ell)*float64(n*n*n))),
				fmt.Sprintf("%d", res.Rounds),
				fmt.Sprintf("%.1f", float64(res.Rounds)/float64(n)),
			})
		}
	}
	return tbl
}

// E9BitsVsBlocks contrasts the §3 bit-granular search (O(log ℓ) iterations)
// with the §4 block-granular search (O(log n²) iterations) on identical
// very long inputs: the blocks variant needs fewer rounds at comparable
// bits — the reason Π_ℕ switches representation for ℓ > n².
func E9BitsVsBlocks(quick bool) Table {
	n := 7
	n2 := n * n
	ks := []int{256, 1024, 4096}
	if quick {
		ks = []int{256, 1024}
	}
	tbl := Table{
		ID:     "E9",
		Title:  fmt.Sprintf("FIXEDLENGTHCA vs FIXEDLENGTHCABLOCKS at n=%d (ℓ multiples of n²=%d)", n, n2),
		Claim:  "Thm 2 vs Thm 4: search iterations O(log ℓ) vs O(log n²) ⇒ fewer rounds for blocks at long ℓ, both O(ℓn) bits",
		Header: []string{"ell_bits", "bitwise_rounds", "blocks_rounds", "round_ratio", "bitwise_bits", "blocks_bits"},
	}
	rng := rand.New(rand.NewSource(9))
	for _, k := range ks {
		ell := n2 * k
		inputs := randInputs(rng, n, ell)
		bitwise := mustAgree(inputs, ca.Options{Protocol: ca.ProtoFixedLength, Width: ell, Seed: 9})
		blocks := mustAgree(inputs, ca.Options{Protocol: ca.ProtoFixedLengthBlocks, Width: ell, Seed: 9})
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", ell),
			fmt.Sprintf("%d", bitwise.Rounds),
			fmt.Sprintf("%d", blocks.Rounds),
			fmt.Sprintf("%.2fx", float64(bitwise.Rounds)/float64(blocks.Rounds)),
			fmtBits(bitwise.HonestBits),
			fmtBits(blocks.HonestBits),
		})
	}
	return tbl
}

func log2(x float64) float64 { return math.Log2(x) }
