package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// honestEcho broadcasts its id for `rounds` rounds and records its inboxes.
func honestEcho(rounds int, log *sync.Map) Behavior {
	return func(env *Env) error {
		for r := 0; r < rounds; r++ {
			in, err := env.ExchangeAll("echo", []byte{byte(env.ID())})
			if err != nil {
				return err
			}
			log.Store(fmt.Sprintf("%d/%d", env.ID(), r), in)
		}
		return nil
	}
}

func TestAllToAllDelivery(t *testing.T) {
	var log sync.Map
	n := 5
	parties := make([]Party, n)
	for i := range parties {
		parties[i] = Party{Behavior: honestEcho(3, &log)}
	}
	rep, err := Run(Config{N: n, T: 1}, parties)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", rep.Rounds)
	}
	for id := 0; id < n; id++ {
		for r := 0; r < 3; r++ {
			v, ok := log.Load(fmt.Sprintf("%d/%d", id, r))
			if !ok {
				t.Fatalf("party %d round %d missing inbox", id, r)
			}
			in := v.([]Message)
			if len(in) != n {
				t.Fatalf("party %d round %d: %d messages, want %d", id, r, len(in), n)
			}
			for j, m := range in {
				if int(m.From) != j || int(m.Payload[0]) != j {
					t.Fatalf("party %d round %d: message %d = from %d payload %v", id, r, j, m.From, m.Payload)
				}
			}
		}
	}
	// Accounting: 3 rounds × n senders × (n-1) non-self recipients × 8 bits.
	wantBits := int64(3 * n * (n - 1) * 8)
	if rep.HonestBits != wantBits {
		t.Errorf("honest bits = %d, want %d", rep.HonestBits, wantBits)
	}
	if rep.BitsByTag["echo"] != wantBits {
		t.Errorf("tag bits = %d, want %d", rep.BitsByTag["echo"], wantBits)
	}
	if rep.CorruptBits != 0 {
		t.Errorf("corrupt bits = %d, want 0", rep.CorruptBits)
	}
	var perParty int64
	for _, b := range rep.BitsByParty {
		perParty += b
	}
	if perParty != wantBits {
		t.Errorf("per-party sum = %d, want %d", perParty, wantBits)
	}
}

func TestRushingAdversarySeesHonestPackets(t *testing.T) {
	n := 4
	var seen []Spied
	var echoed []Message
	parties := make([]Party, n)
	for i := 0; i < 3; i++ {
		id := i
		parties[i] = Party{Behavior: func(env *Env) error {
			in, err := env.ExchangeAll("t", []byte{0xA0 + byte(id)})
			if err != nil {
				return err
			}
			if int(env.ID()) == 0 {
				echoed = in
			}
			return nil
		}}
	}
	parties[3] = Party{Corrupt: true, Behavior: func(env *Env) error {
		spied, err := env.PeekHonest()
		if err != nil {
			return err
		}
		seen = spied
		// Rush: copy party 2's payload into our own round message.
		var stolen []byte
		for _, s := range spied {
			if s.From == 2 && s.To == 0 {
				stolen = s.Payload
			}
		}
		_, err = env.ExchangeAll("t", stolen)
		return err
	}}
	rep, err := Run(Config{N: n, T: 1}, parties)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3*n {
		t.Errorf("adversary saw %d packets, want %d", len(seen), 3*n)
	}
	if len(echoed) != n {
		t.Fatalf("party 0 received %d messages", len(echoed))
	}
	// The corrupt party (From=3) delivered party 2's payload in the same round.
	if echoed[3].From != 3 || echoed[3].Payload[0] != 0xA2 {
		t.Errorf("rushed copy = from %d payload %v", echoed[3].From, echoed[3].Payload)
	}
	if rep.CorruptBits != int64(8*(n-1)) {
		t.Errorf("corrupt bits = %d", rep.CorruptBits)
	}
}

func TestCorruptLoopTerminatesWhenHonestFinish(t *testing.T) {
	n := 4
	parties := make([]Party, n)
	var honestRounds = 5
	for i := 0; i < 3; i++ {
		parties[i] = Party{Behavior: func(env *Env) error {
			for r := 0; r < honestRounds; r++ {
				if _, err := env.ExchangeAll("x", []byte{1}); err != nil {
					return err
				}
			}
			return nil
		}}
	}
	var corruptErr error
	parties[3] = Party{Corrupt: true, Behavior: func(env *Env) error {
		for {
			if _, err := env.PeekHonest(); err != nil {
				corruptErr = err
				return err
			}
			if _, err := env.ExchangeNone(); err != nil {
				corruptErr = err
				return err
			}
		}
	}}
	rep, err := Run(Config{N: n, T: 1}, parties)
	if err != nil {
		t.Fatalf("corrupt error leaked into run error: %v", err)
	}
	if !errors.Is(corruptErr, ErrSimOver) {
		t.Errorf("corrupt exit error = %v, want ErrSimOver", corruptErr)
	}
	if rep.Rounds != honestRounds {
		t.Errorf("rounds = %d, want %d", rep.Rounds, honestRounds)
	}
}

func TestStaggeredCompletionDoesNotDeadlock(t *testing.T) {
	// Parties running different round counts is a protocol bug in the real
	// model, but the scheduler must degrade gracefully, not hang.
	lengths := []int{1, 3, 3}
	parties := make([]Party, 3)
	for i, l := range lengths {
		rounds := l
		parties[i] = Party{Behavior: func(env *Env) error {
			for r := 0; r < rounds; r++ {
				if _, err := env.ExchangeAll("x", []byte{2}); err != nil {
					return err
				}
			}
			return nil
		}}
	}
	rep, err := Run(Config{N: 3, T: 0}, parties)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", rep.Rounds)
	}
}

func TestMaxRoundsCutoff(t *testing.T) {
	parties := []Party{
		{Behavior: func(env *Env) error {
			for {
				if _, err := env.ExchangeNone(); err != nil {
					return err
				}
			}
		}},
	}
	_, err := Run(Config{N: 1, T: 0, MaxRounds: 10}, parties)
	if !errors.Is(err, ErrCutoff) {
		t.Errorf("err = %v, want cutoff", err)
	}
}

func TestHonestErrorFailsRun(t *testing.T) {
	boom := errors.New("boom")
	parties := []Party{
		{Behavior: func(env *Env) error { return boom }},
		{Behavior: func(env *Env) error { return nil }},
	}
	_, err := Run(Config{N: 2, T: 0}, parties)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestCorruptPanicIsContained(t *testing.T) {
	parties := []Party{
		{Behavior: func(env *Env) error {
			_, err := env.ExchangeAll("x", []byte{1})
			return err
		}},
		{Corrupt: true, Behavior: func(env *Env) error { panic("byzantine panic") }},
	}
	rep, err := Run(Config{N: 2, T: 1}, parties)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if rep.PartyErrors[1] == nil {
		t.Error("panic not recorded")
	}
}

func TestHonestCannotPeek(t *testing.T) {
	var peekErr error
	parties := []Party{
		{Behavior: func(env *Env) error {
			_, peekErr = env.PeekHonest()
			return nil
		}},
	}
	if _, err := Run(Config{N: 1, T: 0}, parties); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(peekErr, ErrNotCorrupt) {
		t.Errorf("peek err = %v", peekErr)
	}
}

func TestOutOfRangePacketsDropped(t *testing.T) {
	var got []Message
	parties := []Party{
		{Behavior: func(env *Env) error {
			out := []Packet{
				{To: 99, Tag: "x", Payload: []byte{1}},
				{To: -1, Tag: "x", Payload: []byte{2}},
				{To: 0, Tag: "x", Payload: []byte{3}},
			}
			in, err := env.Exchange(out)
			got = in
			return err
		}},
	}
	if _, err := Run(Config{N: 1, T: 0}, parties); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload[0] != 3 {
		t.Errorf("inbox = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{N: 0, T: 0}, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(Config{N: 2, T: 2}, make([]Party, 2)); err == nil {
		t.Error("t=n accepted")
	}
	if _, err := Run(Config{N: 2, T: 0}, make([]Party, 1)); err == nil {
		t.Error("behavior count mismatch accepted")
	}
	all := []Party{{Corrupt: true, Behavior: func(*Env) error { return nil }}}
	if _, err := Run(Config{N: 1, T: 0}, all); err == nil {
		t.Error("all-corrupt accepted")
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() *Report {
		var log sync.Map
		parties := make([]Party, 4)
		for i := range parties {
			parties[i] = Party{Behavior: honestEcho(4, &log)}
		}
		rep, err := Run(Config{N: 4, T: 1}, parties)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.HonestBits != b.HonestBits || a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Error("reports differ across identical runs")
	}
	if !reflect.DeepEqual(a.BitsByTag, b.BitsByTag) {
		t.Error("tag breakdown differs")
	}
}

func TestFirstPerSender(t *testing.T) {
	msgs := []Message{
		{From: 2, Payload: []byte{1}},
		{From: 2, Payload: []byte{2}},
		{From: 5, Payload: []byte{3}},
	}
	got := FirstPerSender(msgs)
	if len(got) != 2 || got[2][0] != 1 || got[5][0] != 3 {
		t.Errorf("FirstPerSender = %v", got)
	}
}
