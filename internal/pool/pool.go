// Package pool is a bounded, deterministic fan-out engine for the repo's
// batch hot paths: Reed-Solomon stripe encode/decode (package rs), Merkle
// leaf hashing (package merkle), and the experiment drivers.
//
// Design constraints, in order:
//
//   - Determinism. Workers claim work items by index from an atomic
//     counter and write results only into caller-owned slots addressed by
//     that index, so the output of a fan-out is a pure function of the
//     input regardless of scheduling. The package is timer-free and
//     seed-free by construction (enforced by the calint wallclock/detrand
//     checks), so it can sit under protocol code without perturbing
//     deterministic replay.
//
//   - No deadlocks, ever. The caller of ForEach participates in its own
//     job: helper workers are an optimization, and a call completes even
//     if every worker is busy (or the queue is full) because the calling
//     goroutine drains remaining items itself. Nested ForEach calls from
//     inside worker-run items are therefore safe — the inner call degrades
//     to serial execution in the worst case.
//
//   - Bounded concurrency. The shared worker set grows on demand up to
//     runtime.GOMAXPROCS at call time and is never larger; idle workers
//     park on the job queue. With GOMAXPROCS=1 every call runs serially
//     inline with zero goroutine traffic.
//
// Panics in work functions are captured, the fan-out is drained, and the
// first panic value is re-raised on the calling goroutine.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// job is one ForEachChunk fan-out: items [0,chunks) are claimed by
// incrementing next; wg counts completed chunks.
type job struct {
	fn     func(lo, hi int)
	n      int // total items
	grain  int // items per chunk
	chunks int
	next   atomic.Int64
	wg     sync.WaitGroup
	panicV atomic.Pointer[panicValue]
}

type panicValue struct{ v any }

var (
	mu      sync.Mutex
	started int
	// queue carries jobs to parked workers. A job is enqueued once per
	// helper wanted; each worker that receives it works it to exhaustion.
	// The buffer bounds outstanding helper requests, not correctness: a
	// full queue just means fewer helpers.
	queue = make(chan *job, 128)
)

// Workers returns the current fan-out width: the number of goroutines a
// ForEach call may use, including the caller. Callers use it to skip
// split-merge overhead when it reports 1.
func Workers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0,n), fanning the calls across the
// worker set. It returns when all calls have completed. fn must be safe to
// call concurrently from multiple goroutines; distinct indices must touch
// disjoint state. Results are deterministic if fn is deterministic per
// index.
func ForEach(n int, fn func(i int)) {
	ForEachChunk(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachChunk runs fn(lo, hi) over contiguous chunks [lo,hi) of [0,n),
// each at most grain items wide, fanning chunks across the worker set.
// Larger grains amortize per-claim overhead for cheap items (leaf hashes);
// grain 1 suits expensive items (whole symbol columns).
func ForEachChunk(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	width := Workers()
	if width > chunks {
		width = chunks
	}
	if width <= 1 {
		for lo := 0; lo < n; lo += grain {
			fn(lo, minInt(lo+grain, n))
		}
		return
	}
	j := &job{fn: fn, n: n, grain: grain, chunks: chunks}
	j.wg.Add(chunks)
	ensureWorkers(width - 1)
	for h := 0; h < width-1; h++ {
		select {
		case queue <- j:
		default:
			h = width // queue full: proceed with fewer helpers
		}
	}
	j.run() // the caller is always one of the workers
	j.wg.Wait()
	if p := j.panicV.Load(); p != nil {
		panic(fmt.Sprintf("pool: work function panicked: %v", p.v))
	}
}

// run claims and executes chunks until the job is exhausted.
func (j *job) run() {
	for {
		c := int(j.next.Add(1) - 1)
		if c >= j.chunks {
			return
		}
		lo := c * j.grain
		hi := minInt(lo+j.grain, j.n)
		runChunk(j, lo, hi)
	}
}

// runChunk executes one chunk, converting a panic into a recorded value so
// the fan-out always drains and the caller can re-raise it.
func runChunk(j *job, lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			j.panicV.CompareAndSwap(nil, &panicValue{v: r})
		}
		j.wg.Done()
	}()
	j.fn(lo, hi)
}

// ensureWorkers grows the shared worker set to at least want goroutines.
// The set never shrinks; its high-water mark is bounded by the largest
// GOMAXPROCS observed, and idle workers cost only a parked goroutine.
func ensureWorkers(want int) {
	mu.Lock()
	defer mu.Unlock()
	for started < want {
		started++
		go func() {
			for j := range queue {
				j.run()
			}
		}()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
