package convexagreement

import (
	"fmt"
	"math/big"
	"sync"

	"convexagreement/internal/adversary"
	"convexagreement/internal/baselines"
	"convexagreement/internal/core"
	"convexagreement/internal/highcostca"
	"convexagreement/internal/sim"
	"convexagreement/internal/transport"
)

// Agree runs one Convex Agreement instance over the built-in synchronous
// network simulator. inputs[i] is party i's input; entries for corrupted
// parties are ignored. The returned Result carries the common output and
// the exact communication and round costs of the run.
//
// Termination, Agreement, and Convex Validity hold as long as
// len(opts.Corruptions) ≤ opts.T < n/3 — whatever strategies the corrupted
// parties run.
func Agree(inputs []*big.Int, opts Options) (*Result, error) {
	opts, err := normalize(inputs, opts)
	if err != nil {
		return nil, err
	}
	n := opts.N

	runner, err := protocolRunner(opts)
	if err != nil {
		return nil, err
	}

	outputs := make(map[int]*big.Int, n)
	var mu sync.Mutex
	parties := make([]sim.Party, n)
	for i := 0; i < n; i++ {
		if corr, bad := opts.Corruptions[i]; bad {
			behavior, err := corruptBehavior(corr, runner, opts.Seed+int64(i))
			if err != nil {
				return nil, err
			}
			parties[i] = sim.Party{Corrupt: true, Behavior: behavior}
			continue
		}
		input := inputs[i]
		parties[i] = sim.Party{Behavior: func(env *sim.Env) error {
			out, err := runner(env, input)
			if err != nil {
				return err
			}
			mu.Lock()
			outputs[int(env.ID())] = out
			mu.Unlock()
			return nil
		}}
	}
	rep, err := sim.Run(sim.Config{N: n, T: opts.T, MaxRounds: opts.MaxRounds, Timeline: opts.Timeline}, parties)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Outputs:     outputs,
		Rounds:      rep.Rounds,
		HonestBits:  rep.HonestBits,
		CorruptBits: rep.CorruptBits,
		Messages:    rep.Messages,
		BitsByLabel: rep.BitsByTag,
	}
	for _, rs := range rep.Timeline {
		res.Timeline = append(res.Timeline, RoundStats(rs))
	}
	res.BitsByParty = append(res.BitsByParty, rep.BitsByParty...)
	for _, out := range outputs {
		if res.Output == nil {
			res.Output = out
		} else if res.Output.Cmp(out) != 0 {
			return res, ErrDisagreement
		}
	}
	return res, nil
}

// normalize validates and defaults the options.
func normalize(inputs []*big.Int, opts Options) (Options, error) {
	if opts.N == 0 {
		opts.N = len(inputs)
	}
	if opts.N <= 0 || len(inputs) != opts.N {
		return opts, fmt.Errorf("%w: %d inputs for n=%d", ErrOptions, len(inputs), opts.N)
	}
	if opts.T == 0 {
		opts.T = (opts.N - 1) / 3
	}
	if opts.T < 0 || 3*opts.T >= opts.N {
		return opts, fmt.Errorf("%w: t=%d violates t < n/3 for n=%d", ErrOptions, opts.T, opts.N)
	}
	if len(opts.Corruptions) > opts.T {
		return opts, fmt.Errorf("%w: %d corruptions exceed budget t=%d", ErrOptions, len(opts.Corruptions), opts.T)
	}
	for idx := range opts.Corruptions {
		if idx < 0 || idx >= opts.N {
			return opts, fmt.Errorf("%w: corruption index %d out of range", ErrOptions, idx)
		}
	}
	if opts.Protocol == "" {
		opts.Protocol = ProtoOptimal
	}
	if opts.Protocol.NeedsWidth() && opts.Width <= 0 {
		return opts, fmt.Errorf("%w: protocol %q requires Width", ErrOptions, opts.Protocol)
	}
	for i, v := range inputs {
		if _, bad := opts.Corruptions[i]; bad {
			continue
		}
		if v == nil {
			return opts, fmt.Errorf("%w: party %d has nil input", ErrOptions, i)
		}
		if v.Sign() < 0 && !opts.Protocol.AcceptsNegative() {
			return opts, fmt.Errorf("%w: protocol %q takes inputs in ℕ; party %d has %v", ErrOptions, opts.Protocol, i, v)
		}
	}
	return opts, nil
}

// partyRunner executes the selected protocol for one party.
type partyRunner func(net transport.Net, input *big.Int) (*big.Int, error)

func protocolRunner(opts Options) (partyRunner, error) {
	switch opts.Protocol {
	case ProtoOptimal:
		return func(net transport.Net, v *big.Int) (*big.Int, error) {
			return core.PiZ(net, "ca", v)
		}, nil
	case ProtoOptimalNat:
		return func(net transport.Net, v *big.Int) (*big.Int, error) {
			return core.PiN(net, "ca", v)
		}, nil
	case ProtoFixedLength:
		width := opts.Width
		return func(net transport.Net, v *big.Int) (*big.Int, error) {
			return core.FixedLengthCA(net, "ca", width, v)
		}, nil
	case ProtoFixedLengthBlocks:
		width := opts.Width
		return func(net transport.Net, v *big.Int) (*big.Int, error) {
			return core.FixedLengthCABlocks(net, "ca", width, net.N()*net.N(), v)
		}, nil
	case ProtoHighCost:
		return func(net transport.Net, v *big.Int) (*big.Int, error) {
			return highcostca.Run(net, "ca", v)
		}, nil
	case ProtoBroadcast:
		return func(net transport.Net, v *big.Int) (*big.Int, error) {
			return baselines.BroadcastCA(net, "ca", v)
		}, nil
	case ProtoBroadcastParallel:
		return func(net transport.Net, v *big.Int) (*big.Int, error) {
			return baselines.BroadcastCAParallel(net, "ca", v)
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown protocol %q", ErrOptions, opts.Protocol)
	}
}

// corruptBehavior instantiates a byzantine strategy.
func corruptBehavior(c Corruption, runner partyRunner, seed int64) (sim.Behavior, error) {
	switch c.Kind {
	case AdvSilent:
		return adversary.Silent(), nil
	case AdvCrash:
		return adversary.Crash(3), nil
	case AdvGarbage:
		return adversary.Garbage(seed, 128), nil
	case AdvEquivocate:
		return adversary.Equivocate(seed), nil
	case AdvMirror:
		return adversary.Mirror(seed%2 == 0), nil
	case AdvSpam:
		return adversary.Spam(seed, 3), nil
	case AdvReplay:
		return adversary.Replay(seed), nil
	case AdvLateJoin:
		return adversary.LateJoin(3), nil
	case AdvGhost:
		input := c.Input
		if input == nil {
			return nil, fmt.Errorf("%w: AdvGhost requires Corruption.Input", ErrOptions)
		}
		return ghostBehavior(runner, input), nil
	default:
		return nil, fmt.Errorf("%w: unknown adversary kind %q", ErrOptions, c.Kind)
	}
}

// ghostBehavior runs the honest protocol with a poisoned input, then idles.
func ghostBehavior(runner partyRunner, input *big.Int) sim.Behavior {
	return func(env *sim.Env) error {
		if _, err := runner(env, input); err != nil {
			return err
		}
		for {
			if _, err := env.ExchangeNone(); err != nil {
				return err
			}
		}
	}
}
