// Function-summary IR for the interprocedural analyzers.
//
// Each declared function gets a Summary: the lock classes it acquires
// (transitively, with witness positions), its net lock effect at return
// (absolute classes and receiver-relative field paths, so callers can map
// `c.lockHelper()` onto their own held set), whether its call tree
// contains an inescapable loop (goroleak's witness), the typed error
// families its error results can carry, the families it tests with
// errors.Is/As, and the release/retain effect it has on each *wire.Frame
// parameter. Summaries are computed bottom-up by a bounded monotone
// fixpoint over the call graph: every fact domain is finite (lock nets
// are clamped), so the iteration terminates even on mutual recursion.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// maxSummaryRounds bounds the fixpoint; every domain is finite so this is
// a backstop, not a correctness requirement.
const maxSummaryRounds = 32

// lockNetClamp bounds net lock counts so recursive lock helpers cannot
// diverge the fixpoint.
const lockNetClamp = 4

// ReleaseMode classifies what a callee does to a frame parameter.
type ReleaseMode int

const (
	ReleaseNever  ReleaseMode = iota // callee never releases the frame
	ReleaseMaybe                     // releases on some paths
	ReleaseAlways                    // releases unconditionally
)

func (m ReleaseMode) String() string {
	switch m {
	case ReleaseMaybe:
		return "maybe"
	case ReleaseAlways:
		return "always"
	}
	return "never"
}

// FrameEffect is a callee's effect on one *wire.Frame parameter.
type FrameEffect struct {
	Release ReleaseMode
	Retains bool // stored in a field/container/channel: ownership transfer
}

// acq is one transitively-acquired lock class: the witness position and
// whether any hop of the acquisition path was interface-dispatched (CHA
// edges are possible, not proven, so self-deadlock reports require a
// static path).
type acq struct {
	pos      token.Pos
	viaIface bool
}

// Summary is the per-function fact sheet.
type Summary struct {
	NetLocks  map[string]int // lock class -> net effect at return (clamped)
	RecvLocks map[string]int // receiver-relative lock field path -> net effect
	Acquires  map[string]acq // lock class -> acquisition witness in the call tree

	LeakLoop token.Pos // inescapable loop in this function's own body
	LeakVia  *FuncInfo // callee whose call tree contains one
	LeakCall token.Pos // position of the call reaching LeakVia

	TypedErrs map[string]token.Pos // error family -> production/propagation witness
	Handles   map[string]bool      // families tested with errors.Is/As/== in this body
	ErrParams map[int]bool         // error parameter index -> preserved (stored/returned/forwarded intact)

	FrameParams map[int]FrameEffect // parameter index -> frame effect

	lockSites []lockSite
	topNodes  map[ast.Node]bool // exprs of top-level statements (unconditional)
}

func newSummary() *Summary {
	return &Summary{
		NetLocks:    map[string]int{},
		RecvLocks:   map[string]int{},
		Acquires:    map[string]acq{},
		TypedErrs:   map[string]token.Pos{},
		Handles:     map[string]bool{},
		ErrParams:   map[int]bool{},
		FrameParams: map[int]FrameEffect{},
	}
}

// lockSite is one sync.Mutex/RWMutex Lock/Unlock call in a body.
type lockSite struct {
	x        ast.Expr // the locked expression ("c.mu")
	op       string   // "lock" | "unlock"
	pos      token.Pos
	topLevel bool // statement directly in the body list (unconditional)
	deferred bool
	inLit    bool
	inGo     bool
}

// ensureSummaries computes every function summary to fixpoint.
func (pr *Program) ensureSummaries() {
	if pr.summarized {
		return
	}
	pr.ensure()
	pr.summarized = true
	ec := newErrCtx(pr)
	for _, fi := range pr.infos {
		fi.Sum.topNodes = topLevelNodes(fi.Decl.Body)
		fi.Sum.lockSites = collectLockSites(fi)
		fi.Sum.LeakLoop = inescapableLoop(fi.Pass, fi.Decl.Body)
		scanHandles(ec, fi)
	}
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, fi := range pr.infos {
			if lockFactsStep(fi) {
				changed = true
			}
			if leakFactsStep(fi) {
				changed = true
			}
			if errFactsStep(ec, fi) {
				changed = true
			}
			if errParamStep(pr, fi) {
				changed = true
			}
			if frameFactsStep(fi) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// topLevelNodes marks the expressions of statements sitting directly in
// the body list: effects there are unconditional on every path that does
// not return earlier.
func topLevelNodes(body *ast.BlockStmt) map[ast.Node]bool {
	top := map[ast.Node]bool{}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			top[ast.Unparen(s.X)] = true
		case *ast.DeferStmt:
			top[s.Call] = true
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				top[ast.Unparen(r)] = true
			}
		}
	}
	return top
}

// collectLockSites finds every mutex operation in the body, tagged with
// its execution context.
func collectLockSites(fi *FuncInfo) []lockSite {
	p := fi.Pass
	var sites []lockSite
	type item struct {
		n                    ast.Node
		inLit, inGo, inDefer bool
	}
	queue := []item{{fi.Decl.Body, false, false, false}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ast.Inspect(it.n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				queue = append(queue, item{x.Body, true, it.inGo, false})
				return false
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					queue = append(queue, item{lit.Body, false, true, false})
				}
				for _, a := range x.Call.Args {
					queue = append(queue, item{a, it.inLit, it.inGo, it.inDefer})
				}
				return false
			case *ast.DeferStmt:
				queue = append(queue, item{x.Call, it.inLit, it.inGo, true})
				return false
			case *ast.CallExpr:
				if lx, op := lockOpExpr(p, x); op != "" {
					sites = append(sites, lockSite{
						x: lx, op: op, pos: x.Pos(),
						topLevel: fi.Sum.topNodes[x],
						deferred: it.inDefer, inLit: it.inLit, inGo: it.inGo,
					})
				}
			}
			return true
		})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// lockOpExpr classifies a call as a mutex acquire/release and returns the
// locked expression.
func lockOpExpr(p *Pass, call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return nil, ""
	}
	rp, rt := recvTypeName(fn)
	if rp != "sync" || (rt != "Mutex" && rt != "RWMutex" && rt != "Locker") {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return sel.X, "lock"
	case "Unlock", "RUnlock":
		return sel.X, "unlock"
	}
	return nil, ""
}

// lockClassOf names the lock class of a locked expression and, when the
// expression is rooted at the function's receiver, its receiver-relative
// field path. Classes are "<pkg>.<Type>.<field>" for struct fields,
// "<pkg>.<var>" for package-level mutexes, "<pkg>.<Type>.Mutex" for
// embedded mutexes. Locals and parameters are untracked ("").
func lockClassOf(p *Pass, recvObj types.Object, x ast.Expr) (class, recvRel string) {
	x = ast.Unparen(x)
	if ix, ok := x.(*ast.IndexExpr); ok {
		x = ast.Unparen(ix.X)
	}
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				class = n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + e.Sel.Name
			}
		}
		if recvObj != nil {
			if id := rootIdent(e.X); id != nil && objOf(p.Info, id) == recvObj {
				full := exprKey(e)
				if i := strings.IndexByte(full, '.'); i >= 0 {
					recvRel = full[i+1:]
				}
			}
		}
	case *ast.Ident:
		obj := objOf(p.Info, e)
		v, ok := obj.(*types.Var)
		if !ok {
			return "", ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), ""
		}
		// a named struct value with an embedded mutex
		t := v.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
			class = n.Obj().Pkg().Name() + "." + n.Obj().Name() + ".Mutex"
		}
		if obj == recvObj {
			recvRel = "."
		}
	}
	return class, recvRel
}

// ---- lock facts ----

func lockFactsStep(fi *FuncInfo) bool {
	p, sum := fi.Pass, fi.Sum
	changed := false

	// Transitive acquisitions (synchronous flow only).
	addAcq := func(class string, pos token.Pos, iface bool) {
		old, ok := sum.Acquires[class]
		switch {
		case !ok:
			sum.Acquires[class] = acq{pos, iface}
			changed = true
		case old.viaIface && !iface:
			sum.Acquires[class] = acq{pos, false}
			changed = true
		}
	}
	for _, ls := range sum.lockSites {
		if ls.inLit || ls.inGo || ls.op != "lock" {
			continue
		}
		if class, _ := lockClassOf(p, fi.recvObj, ls.x); class != "" {
			addAcq(class, ls.pos, false)
		}
	}
	for _, cs := range fi.Calls {
		if cs.InLit || cs.InGo {
			continue
		}
		for _, callee := range cs.Callees {
			for class, a := range callee.Sum.Acquires {
				addAcq(class, cs.Call.Pos(), a.viaIface || cs.Iface)
			}
		}
	}

	// Net effect at return: top-level lock statements plus top-level
	// static calls to module functions with their own net effect.
	newNet := map[string]int{}
	newRecv := map[string]int{}
	for _, ls := range sum.lockSites {
		if ls.inLit || ls.inGo || !ls.topLevel {
			continue
		}
		d := 1
		if ls.op == "unlock" {
			d = -1
		}
		class, rel := lockClassOf(p, fi.recvObj, ls.x)
		if class != "" {
			newNet[class] += d
		}
		if rel != "" {
			newRecv[rel] += d
		}
	}
	for _, cs := range fi.Calls {
		if cs.InLit || cs.InGo || cs.Iface || len(cs.Callees) != 1 || !sum.topNodes[cs.Call] {
			continue
		}
		callee := cs.Callees[0]
		for class, n := range callee.Sum.NetLocks {
			newNet[class] += n
		}
		if fi.recvObj != nil && callee.recvObj != nil {
			if sel, ok := ast.Unparen(cs.Call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && objOf(p.Info, id) == fi.recvObj {
					for rel, n := range callee.Sum.RecvLocks {
						newRecv[rel] += n
					}
				}
			}
		}
	}
	clampNets(newNet)
	clampNets(newRecv)
	if !netEqual(sum.NetLocks, newNet) {
		sum.NetLocks = newNet
		changed = true
	}
	if !netEqual(sum.RecvLocks, newRecv) {
		sum.RecvLocks = newRecv
		changed = true
	}
	return changed
}

func clampNets(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		} else if v > lockNetClamp {
			m[k] = lockNetClamp
		} else if v < -lockNetClamp {
			m[k] = -lockNetClamp
		}
	}
}

func netEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ---- goroutine-leak facts ----

func leakFactsStep(fi *FuncInfo) bool {
	if fi.Sum.LeakLoop.IsValid() || fi.Sum.LeakVia != nil {
		return false
	}
	for _, cs := range fi.Calls {
		if cs.InLit || cs.InGo || cs.Iface {
			continue
		}
		for _, callee := range cs.Callees {
			if callee == fi {
				continue
			}
			if callee.Sum.LeakLoop.IsValid() || callee.Sum.LeakVia != nil {
				fi.Sum.LeakVia = callee
				fi.Sum.LeakCall = cs.Call.Pos()
				return true
			}
		}
	}
	return false
}

// inescapableLoop returns the position of the first `for { }` (no
// condition) with no exit on any path, or an empty `select {}`, in the
// function's own synchronous body.
func inescapableLoop(p *Pass, body *ast.BlockStmt) token.Pos {
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if len(x.Body.List) == 0 {
				found = x.Pos()
				return false
			}
		case *ast.ForStmt:
			if x.Cond == nil && !stmtsExit(p, x.Body.List, false) {
				found = x.Pos()
				return false
			}
		}
		return true
	})
	return found
}

// stmtsExit reports whether executing the list can leave the enclosing
// loop: return, break (binding to it), goto, or a never-returning call.
// breakable is true once an intervening construct captures unlabeled
// breaks.
func stmtsExit(p *Pass, list []ast.Stmt, breakable bool) bool {
	for _, s := range list {
		if stmtExits(p, s, breakable) {
			return true
		}
	}
	return false
}

func stmtExits(p *Pass, s ast.Stmt, breakable bool) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch x.Tok {
		case token.GOTO:
			return true // conservatively assume it leaves the loop
		case token.BREAK:
			return x.Label != nil || !breakable
		}
		return false
	case *ast.ExprStmt:
		return exprPanics(p, x.X)
	case *ast.SendStmt:
		return exprPanics(p, x.Value)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			if exprPanics(p, e) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if x.Init != nil && stmtExits(p, x.Init, breakable) {
			return true
		}
		if exprPanics(p, x.Cond) || stmtsExit(p, x.Body.List, breakable) {
			return true
		}
		return x.Else != nil && stmtExits(p, x.Else, breakable)
	case *ast.ForStmt:
		return stmtsExit(p, x.Body.List, true)
	case *ast.RangeStmt:
		return stmtsExit(p, x.Body.List, true)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var clauses []ast.Stmt
		if sw, ok := x.(*ast.SwitchStmt); ok {
			clauses = sw.Body.List
		} else {
			clauses = x.(*ast.TypeSwitchStmt).Body.List
		}
		for _, c := range clauses {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsExit(p, cc.Body, true) {
				return true
			}
		}
		return false
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && stmtsExit(p, cc.Body, true) {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		return stmtsExit(p, x.List, breakable)
	case *ast.LabeledStmt:
		return stmtExits(p, x.Stmt, breakable)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						if exprPanics(p, e) {
							return true
						}
					}
				}
			}
		}
		return false
	}
	return false
}

// exprPanics reports whether expr contains a call that never returns:
// panic, os.Exit, runtime.Goexit, log.Fatal*/Panic*, testing Fatal*.
func exprPanics(p *Pass, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				found = true
				return false
			}
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case "os":
			found = found || fn.Name() == "Exit"
		case "runtime":
			found = found || fn.Name() == "Goexit"
		case "log", "testing":
			found = found || strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
		}
		return !found
	})
	return found
}

// ---- typed-error facts ----

// errFamily is one typed error family the errflow check tracks.
type errFamily struct {
	name     string // display name ("checkpoint.ErrStorageDegraded")
	pkgPath  string
	sentinel string // package-level sentinel var
	typeName string // optional concrete error type in the same package
}

var errFamilies = []errFamily{
	{"checkpoint.ErrStorageDegraded", modulePath + "/internal/checkpoint", "ErrStorageDegraded", ""},
	{"checkpoint.ErrStorageLost", modulePath + "/internal/checkpoint", "ErrStorageLost", ""},
	{"wire.ErrAdmission", modulePath + "/internal/wire", "ErrAdmission", "AdmissionError"},
	{"convexagreement.ErrSessionPoisoned", modulePath, "ErrSessionPoisoned", ""},
	{"supervisor.ErrStalled", modulePath + "/internal/supervisor", "ErrStalled", ""},
}

// errCtx resolves the family sentinels and types against the loaded
// packages once per program.
type errCtx struct {
	prog     *Program
	sentinel map[types.Object]string
	typeObj  map[types.Object]string
}

func newErrCtx(pr *Program) *errCtx {
	ec := &errCtx{prog: pr, sentinel: map[types.Object]string{}, typeObj: map[types.Object]string{}}
	for _, p := range pr.Passes {
		for _, fam := range errFamilies {
			if p.Pkg.Path() != fam.pkgPath {
				continue
			}
			if o := p.Pkg.Scope().Lookup(fam.sentinel); o != nil {
				ec.sentinel[o] = fam.name
			}
			if fam.typeName != "" {
				if o := p.Pkg.Scope().Lookup(fam.typeName); o != nil {
					ec.typeObj[o] = fam.name
				}
			}
		}
	}
	return ec
}

// famOfType maps a type to its family when it is (a pointer to) a family
// error type.
func (ec *errCtx) famOfType(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return ec.typeObj[n.Obj()]
	}
	return ""
}

// famsOf computes which families the value of expr can carry, given the
// current taint of local variables.
func (ec *errCtx) famsOf(fi *FuncInfo, tainted map[types.Object]map[string]bool, expr ast.Expr) map[string]bool {
	p := fi.Pass
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := objOf(p.Info, e); obj != nil {
			if fam := ec.sentinel[obj]; fam != "" {
				return map[string]bool{fam: true}
			}
			return tainted[obj]
		}
	case *ast.SelectorExpr:
		if obj := objOf(p.Info, e.Sel); obj != nil {
			if fam := ec.sentinel[obj]; fam != "" {
				return map[string]bool{fam: true}
			}
			return tainted[obj]
		}
	case *ast.UnaryExpr:
		return ec.famsOf(fi, tainted, e.X)
	case *ast.CompositeLit:
		if tv, ok := p.Info.Types[e]; ok {
			if fam := ec.famOfType(tv.Type); fam != "" {
				return map[string]bool{fam: true}
			}
		}
	case *ast.CallExpr:
		fn := calleeFunc(p.Info, e)
		if fn == nil {
			return nil
		}
		switch funcPkgPath(fn) {
		case "fmt":
			if fn.Name() == "Errorf" && fmtWrapsError(e) {
				return ec.famsOfArgs(fi, tainted, e.Args)
			}
			return nil
		case "errors":
			if fn.Name() == "Join" {
				return ec.famsOfArgs(fi, tainted, e.Args)
			}
			return nil
		}
		if callee := ec.prog.infoOf(fn); callee != nil {
			out := map[string]bool{}
			for fam := range callee.Sum.TypedErrs {
				out[fam] = true
			}
			if len(out) > 0 {
				return out
			}
			return nil
		}
		// a stdlib-or-unresolved call returning a family-typed value
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Results().Len(); i++ {
				if fam := ec.famOfType(sig.Results().At(i).Type()); fam != "" {
					return map[string]bool{fam: true}
				}
			}
		}
	}
	return nil
}

func (ec *errCtx) famsOfArgs(fi *FuncInfo, tainted map[types.Object]map[string]bool, args []ast.Expr) map[string]bool {
	var out map[string]bool
	for _, a := range args {
		for fam := range ec.famsOf(fi, tainted, a) {
			if out == nil {
				out = map[string]bool{}
			}
			out[fam] = true
		}
	}
	return out
}

// fmtWrapsError reports whether a fmt.Errorf call's format literal
// contains %w (wrapping preserves the family; %v/%s collapse it).
func fmtWrapsError(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	return ok && strings.Contains(lit.Value, "%w")
}

// errFactsStep recomputes which families fi's error results can carry.
func errFactsStep(ec *errCtx, fi *FuncInfo) bool {
	if !returnsError(fi.Fn) {
		return false
	}
	p := fi.Pass
	tainted := errTaint(ec, fi)
	changed := false
	add := func(fam string, pos token.Pos) {
		if _, ok := fi.Sum.TypedErrs[fam]; !ok {
			fi.Sum.TypedErrs[fam] = pos
			changed = true
		}
	}
	var namedResults []types.Object
	if res := fi.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					namedResults = append(namedResults, obj)
				}
			}
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(x.Results) == 0 {
				for _, obj := range namedResults {
					for fam := range tainted[obj] {
						add(fam, x.Pos())
					}
				}
				return true
			}
			for _, r := range x.Results {
				for fam := range ec.famsOf(fi, tainted, r) {
					add(fam, r.Pos())
				}
			}
		}
		return true
	})
	return changed
}

// errTaint runs the small flow-insensitive taint loop over fi's
// assignments: an identifier assigned an expression carrying a family
// carries that family.
func errTaint(ec *errCtx, fi *FuncInfo) map[types.Object]map[string]bool {
	p := fi.Pass
	tainted := map[types.Object]map[string]bool{}
	taint := func(obj types.Object, fams map[string]bool) bool {
		if obj == nil || len(fams) == 0 {
			return false
		}
		cur := tainted[obj]
		if cur == nil {
			cur = map[string]bool{}
			tainted[obj] = cur
		}
		grew := false
		for fam := range fams {
			if !cur[fam] {
				cur[fam] = true
				grew = true
			}
		}
		return grew
	}
	lhsObj := func(e ast.Expr) types.Object {
		switch l := ast.Unparen(e).(type) {
		case *ast.Ident:
			return objOf(p.Info, l)
		case *ast.SelectorExpr:
			return objOf(p.Info, l.Sel)
		}
		return nil
	}
	for sub := 0; sub < 4; sub++ {
		grew := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				fams := ec.famsOf(fi, tainted, as.Rhs[0])
				for _, l := range as.Lhs {
					if tv, ok := p.Info.Types[l]; ok && isErrorType(tv.Type) {
						if taint(lhsObj(l), fams) {
							grew = true
						}
					}
				}
				return true
			}
			for i := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if taint(lhsObj(as.Lhs[i]), ec.famsOf(fi, tainted, as.Rhs[i])) {
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	return tainted
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// scanHandles records which families fi tests with errors.Is/As or a
// direct sentinel comparison (function literals included: helpers often
// classify inside closures).
func scanHandles(ec *errCtx, fi *FuncInfo) {
	p := fi.Pass
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(p.Info, x)
			if fn == nil || funcPkgPath(fn) != "errors" || len(x.Args) < 2 {
				return true
			}
			switch fn.Name() {
			case "Is":
				if obj := exprObj(p.Info, x.Args[1]); obj != nil {
					if fam := ec.sentinel[obj]; fam != "" {
						fi.Sum.Handles[fam] = true
					}
				}
			case "As":
				if tv, ok := p.Info.Types[x.Args[1]]; ok {
					if fam := ec.famOfType(tv.Type); fam != "" {
						fi.Sum.Handles[fam] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if obj := exprObj(p.Info, side); obj != nil {
						if fam := ec.sentinel[obj]; fam != "" {
							fi.Sum.Handles[fam] = true
						}
					}
				}
			}
		}
		return true
	})
}

// errParamObjs maps fi's error-typed parameters to their indices.
func errParamObjs(fi *FuncInfo) map[types.Object]int {
	params := fi.Decl.Type.Params
	if params == nil {
		return nil
	}
	var out map[types.Object]int
	idx := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if obj := fi.Pass.Info.Defs[name]; obj != nil && isErrorType(obj.Type()) {
				if out == nil {
					out = map[types.Object]int{}
				}
				out[obj] = idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return out
}

// errParamStep marks error parameters the function preserves: returned
// (directly or under %w/errors.Join), stashed in a field, container, or
// channel, panicked, or forwarded to a callee that itself preserves the
// corresponding parameter (transitive, to fixpoint). A preserved error
// is still reachable by a later errors.Is/As, so handing a typed error
// to such a function is propagation, not a sink.
func errParamStep(pr *Program, fi *FuncInfo) bool {
	params := errParamObjs(fi)
	if len(params) == 0 {
		return false
	}
	p, sum := fi.Pass, fi.Sum
	changed := false
	preserve := func(obj types.Object) {
		if idx, ok := params[obj]; ok && !sum.ErrParams[idx] {
			sum.ErrParams[idx] = true
			changed = true
		}
	}
	// carrier resolves expr to a tracked parameter it carries intact:
	// the parameter itself, or the parameter under a %w-wrap or Join.
	var carrier func(e ast.Expr) types.Object
	carrier = func(e ast.Expr) types.Object {
		if obj := exprObj(p.Info, e); obj != nil {
			if _, ok := params[obj]; ok {
				return obj
			}
		}
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return nil
		}
		switch funcPkgPath(fn) {
		case "fmt":
			if fn.Name() == "Errorf" && fmtWrapsError(call) {
				for _, a := range call.Args[1:] {
					if o := carrier(a); o != nil {
						return o
					}
				}
			}
		case "errors":
			if fn.Name() == "Join" {
				for _, a := range call.Args {
					if o := carrier(a); o != nil {
						return o
					}
				}
			}
		}
		return nil
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if o := carrier(r); o != nil {
					preserve(o)
				}
			}
		case *ast.AssignStmt:
			for i, r := range x.Rhs {
				o := carrier(r)
				if o == nil || i >= len(x.Lhs) {
					continue
				}
				switch ast.Unparen(x.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					preserve(o)
				}
			}
		case *ast.SendStmt:
			if o := carrier(x.Value); o != nil {
				preserve(o)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if o := carrier(el); o != nil {
					preserve(o)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(p.Info, x)
			if fn == nil {
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
						switch b.Name() {
						case "panic":
							for _, a := range x.Args {
								if o := carrier(a); o != nil {
									preserve(o)
								}
							}
						case "append":
							for _, a := range x.Args[1:] {
								if o := carrier(a); o != nil {
									preserve(o)
								}
							}
						}
					}
				}
				return true
			}
			if mfi := pr.infoOf(fn); mfi != nil {
				for i, a := range x.Args {
					o := carrier(a)
					if o == nil {
						continue
					}
					if mfi.Sum.ErrParams[i] {
						preserve(o)
					}
				}
			}
		}
		return true
	})
	return changed
}

// exprObj resolves an ident or selector expression to its object.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(info, x)
	case *ast.SelectorExpr:
		return objOf(info, x.Sel)
	}
	return nil
}

// ---- frame facts ----

// frameParamObjs maps fi's *wire.Frame parameters to their indices.
func frameParamObjs(fi *FuncInfo) map[types.Object]int {
	params := fi.Decl.Type.Params
	if params == nil {
		return nil
	}
	var out map[types.Object]int
	idx := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if isFramePtr(fi.Pass, field.Type) {
				if obj := fi.Pass.Info.Defs[name]; obj != nil {
					if out == nil {
						out = map[types.Object]int{}
					}
					out[obj] = idx
				}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return out
}

// isFramePtr reports whether the type expression denotes *wire.Frame.
func isFramePtr(p *Pass, te ast.Expr) bool {
	tv, ok := p.Info.Types[te]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == modulePath+"/internal/wire" && n.Obj().Name() == "Frame"
}

func frameFactsStep(fi *FuncInfo) bool {
	params := frameParamObjs(fi)
	if len(params) == 0 {
		return false
	}
	p, sum := fi.Pass, fi.Sum
	changed := false
	merge := func(idx int, eff FrameEffect) {
		cur := sum.FrameParams[idx]
		next := cur
		if eff.Release > next.Release {
			next.Release = eff.Release
		}
		next.Retains = next.Retains || eff.Retains
		if next != cur {
			sum.FrameParams[idx] = next
			changed = true
		}
	}
	paramIdx := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		obj := objOf(p.Info, id)
		idx, ok := params[obj]
		return idx, ok
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			// direct Release of a parameter
			if _, _, ok := frameReleaseOp(p, x); ok {
				sel := ast.Unparen(x.Fun).(*ast.SelectorExpr)
				if idx, ok := paramIdx(sel.X); ok {
					mode := ReleaseMaybe
					if sum.topNodes[x] {
						mode = ReleaseAlways
					}
					merge(idx, FrameEffect{Release: mode})
				}
				return true
			}
			// builtin append retains
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					for _, a := range x.Args[1:] {
						if idx, ok := paramIdx(a); ok {
							merge(idx, FrameEffect{Retains: true})
						}
					}
					return true
				}
			}
		case *ast.AssignStmt:
			for i, r := range x.Rhs {
				idx, ok := paramIdx(r)
				if !ok || i >= len(x.Lhs) {
					continue
				}
				switch ast.Unparen(x.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					merge(idx, FrameEffect{Retains: true})
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if idx, ok := paramIdx(elt); ok {
					merge(idx, FrameEffect{Retains: true})
				}
			}
		case *ast.SendStmt:
			if idx, ok := paramIdx(x.Value); ok {
				merge(idx, FrameEffect{Retains: true})
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if idx, ok := paramIdx(r); ok {
					merge(idx, FrameEffect{Retains: true})
				}
			}
		}
		return true
	})
	// call-transitive effects
	for _, cs := range fi.Calls {
		if cs.InLit || cs.InGo || cs.Iface || len(cs.Callees) != 1 {
			continue
		}
		callee := cs.Callees[0]
		for argIdx, arg := range cs.Call.Args {
			idx, ok := paramIdx(arg)
			if !ok {
				continue
			}
			eff, ok := callee.Sum.FrameParams[argIdx]
			if !ok {
				continue
			}
			mode := ReleaseNever
			if eff.Release == ReleaseAlways && sum.topNodes[cs.Call] {
				mode = ReleaseAlways
			} else if eff.Release != ReleaseNever {
				mode = ReleaseMaybe
			}
			merge(idx, FrameEffect{Release: mode, Retains: eff.Retains})
		}
	}
	return changed
}

// ---- deterministic serialization (summary-cache determinism test) ----

// SummaryJSON renders every function summary in a deterministic JSON
// form: map keys sorted, positions as "file.go:line".
func (pr *Program) SummaryJSON() ([]byte, error) {
	pr.ensureSummaries()
	posStr := func(pos token.Pos) string {
		if !pos.IsValid() {
			return ""
		}
		p := pr.Fset.Position(pos)
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}
	out := map[string]any{}
	for _, fi := range pr.infos {
		s := fi.Sum
		entry := map[string]any{}
		if len(s.NetLocks) > 0 {
			entry["netLocks"] = s.NetLocks
		}
		if len(s.RecvLocks) > 0 {
			entry["recvLocks"] = s.RecvLocks
		}
		if len(s.Acquires) > 0 {
			m := map[string]string{}
			for class, a := range s.Acquires {
				tag := ""
				if a.viaIface {
					tag = " (via interface)"
				}
				m[class] = posStr(a.pos) + tag
			}
			entry["acquires"] = m
		}
		if s.LeakLoop.IsValid() {
			entry["leakLoop"] = posStr(s.LeakLoop)
		}
		if s.LeakVia != nil {
			entry["leakVia"] = displayName(s.LeakVia.Fn)
		}
		if len(s.TypedErrs) > 0 {
			m := map[string]string{}
			for fam, pos := range s.TypedErrs {
				m[fam] = posStr(pos)
			}
			entry["typedErrs"] = m
		}
		if len(s.Handles) > 0 {
			var fams []string
			for fam := range s.Handles {
				fams = append(fams, fam)
			}
			sort.Strings(fams)
			entry["handles"] = fams
		}
		if len(s.ErrParams) > 0 {
			var idxs []int
			for idx := range s.ErrParams {
				idxs = append(idxs, idx)
			}
			sort.Ints(idxs)
			entry["errParams"] = idxs
		}
		if len(s.FrameParams) > 0 {
			m := map[string]any{}
			for idx, eff := range s.FrameParams {
				m[fmt.Sprintf("%d", idx)] = map[string]any{"release": eff.Release.String(), "retains": eff.Retains}
			}
			entry["frameParams"] = m
		}
		if len(entry) > 0 {
			out[displayName(fi.Fn)] = entry
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
