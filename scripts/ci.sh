#!/bin/sh
# Minimal CI gate: static checks, full build + test, and the race detector
# over the packages with real concurrency (the lock-step scheduler and the
# pooled codec). Mirrors `make ci`.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (sim, rs, tcpnet, channet, faultnet)"
go test -race ./internal/sim/... ./internal/rs/... ./internal/tcpnet/... ./internal/channet/... ./internal/faultnet/...

echo "== go test -fuzz smoke (wire frames, baplus tuples)"
go test -run '^$' -fuzz FuzzReadFrame -fuzztime 5s ./internal/wire/
go test -run '^$' -fuzz FuzzDecode -fuzztime 5s ./internal/baplus/

echo "CI OK"
