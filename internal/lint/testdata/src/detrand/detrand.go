// Fixture for the detrand analyzer: references to the process-global
// math/rand generator are flagged; seeded *rand.Rand use and the
// constructors that build one are not.
package detrand

import "math/rand"

func badCall(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn draws from the process-global RNG`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle`
}

func badValueReference() func() int64 {
	return rand.Int63 // want `math/rand\.Int63`
}

func badRead(buf []byte) {
	rand.Read(buf) // want `math/rand\.Read`
}

func goodSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

func goodZipf(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	return rand.NewZipf(rng, 1.1, 1, 100).Uint64()
}

func suppressed(n int) int {
	//calint:ignore detrand demo-only jitter, never replayed
	return rand.Intn(n)
}

func suppressedTrailing(n int) int {
	return rand.Intn(n) //calint:ignore detrand demo-only jitter, never replayed
}
