// Package baplus implements Section 7 of the paper: Byzantine Agreement
// with the two extra properties the CA construction needs —
//
//   - Intrusion Tolerance (Definition 3): honest parties output an honest
//     party's input or ⊥.
//   - Bounded Pre-Agreement (Definition 4): agreement on ⊥ only happens if
//     fewer than n−2t honest parties share an input.
//
// Plus is the short-message protocol Π_BA+ (Theorem 6); Long is the
// long-message extension Π_ℓBA+ (Theorem 1), which agrees on a κ-bit Merkle
// root of the Reed-Solomon encoding of the value and then disperses the
// value itself with O(ℓn + κ·n²·log n) bits.
package baplus

import (
	"bytes"
	"sort"

	"convexagreement/internal/ba"
	"convexagreement/internal/transport"
	"convexagreement/internal/wire"
)

// Plus runs Π_BA+ on a short value (κ bits in the paper; any byte string
// works). The return convention is (value, true) for a non-⊥ agreement and
// (nil, false) for ⊥. All honest parties must call it in the same round
// with the same tag.
//
// Under t < n/3 it achieves BA plus Intrusion Tolerance and Bounded
// Pre-Agreement, with O(κn²) bits on top of the Π_BA invocations
// (Theorem 6).
func Plus(env transport.Net, tag string, input []byte) ([]byte, bool, error) {
	n, t := env.N(), env.T()

	// Line 1: distribute inputs.
	in, err := transport.ExchangeAll(env, tag+"/dist", input)
	if err != nil {
		return nil, false, err
	}
	// Line 2: vote for every value received from ≥ n−2t parties (at most
	// two such values can exist; kept deterministic and defensive).
	seen := supportedValues(in, n-2*t, 2)
	vote := encodeVote(seen)
	in, err = transport.ExchangeAll(env, tag+"/vote", vote)
	if err != nil {
		return nil, false, err
	}
	// Line 3: a ≤ b are the values voted by ≥ n−t parties (≤ 2 exist).
	voted := votedValues(in, n-t)
	var a, b []byte
	aBot, bBot := true, true
	switch len(voted) {
	case 1:
		a, b = voted[0], voted[0]
		aBot, bBot = false, false
	case 2:
		a, b = voted[0], voted[1]
		aBot, bBot = false, false
	}

	// Line 4: try to agree on a.
	out, ok, err := tryAgree(env, tag+"/a", a, aBot)
	if err != nil || ok {
		return out, ok, err
	}
	// Line 5: try to agree on b; otherwise ⊥.
	return tryAgree(env, tag+"/b", b, bBot)
}

// tryAgree runs one "agree then confirm" step of Π_BA+ lines 4–5: BA on the
// candidate value, then binary BA on whether the result matches the
// caller's candidate.
func tryAgree(env transport.Net, tag string, cand []byte, candBot bool) ([]byte, bool, error) {
	agreed, agreedOK, err := ba.Multivalued(env, tag+"/val", encodeOpt(cand, candBot))
	if err != nil {
		return nil, false, err
	}
	val, valBot := decodeOpt(agreed, agreedOK)
	happy := byte(0)
	if !candBot && !valBot && bytes.Equal(val, cand) {
		happy = 1
	}
	confirmed, err := ba.Binary(env, tag+"/confirm", happy)
	if err != nil {
		return nil, false, err
	}
	if confirmed == 1 {
		// Some honest party was happy, so the agreed value is its non-⊥
		// candidate; all honest parties decoded the same val.
		return val, true, nil
	}
	return nil, false, nil
}

// encodeOpt frames a value-or-⊥ for the inner multivalued BA.
func encodeOpt(v []byte, bot bool) []byte {
	if bot {
		return []byte{0}
	}
	w := wire.NewWriter(1 + len(v))
	w.Byte(1)
	w.Raw(v)
	return w.Finish()
}

// decodeOpt unframes the inner BA's output; anything other than a
// well-formed present value is treated as ⊥.
func decodeOpt(raw []byte, ok bool) ([]byte, bool) {
	if !ok || len(raw) < 1 || raw[0] != 1 {
		return nil, true
	}
	return raw[1:], false
}

// supportedValues returns up to max values that at least threshold distinct
// senders sent, sorted ascending for determinism.
func supportedValues(in []transport.Message, threshold, max int) [][]byte {
	counts := make(map[string]int)
	for _, payload := range transport.FirstPerSender(in) {
		counts[string(payload)]++
	}
	var out []string
	for s, c := range counts {
		if c >= threshold {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	if len(out) > max {
		out = out[:max]
	}
	vals := make([][]byte, len(out))
	for i, s := range out {
		vals[i] = []byte(s)
	}
	return vals
}

// encodeVote frames VOTE(...), VOTE(v1) or VOTE(v1, v2).
func encodeVote(vals [][]byte) []byte {
	w := wire.NewWriter(16)
	w.Byte(byte(len(vals)))
	for _, v := range vals {
		w.Bytes(v)
	}
	return w.Finish()
}

// votedValues tallies votes (each sender contributes ≤ 2 distinct values)
// and returns the values with at least threshold votes, sorted ascending.
// At most two can exist when threshold ≥ n−t and t < n/3; kept defensive.
func votedValues(in []transport.Message, threshold int) [][]byte {
	counts := make(map[string]int)
	for _, payload := range transport.FirstPerSender(in) {
		r := wire.NewReader(payload)
		k := r.Byte()
		if r.Err() != nil || k > 2 {
			continue
		}
		unique := make(map[string]bool, 2)
		for i := byte(0); i < k; i++ {
			// Borrowed read: the string conversion below copies, so the
			// value never outlives the payload it aliases.
			v := r.BytesZC()
			if r.Err() != nil {
				break
			}
			unique[string(v)] = true
		}
		if r.Err() != nil || r.Close() != nil {
			continue
		}
		for s := range unique {
			counts[s]++
		}
	}
	var keys []string
	for s, c := range counts {
		if c >= threshold {
			keys = append(keys, s)
		}
	}
	sort.Strings(keys)
	if len(keys) > 2 {
		keys = keys[:2]
	}
	vals := make([][]byte, len(keys))
	for i, s := range keys {
		vals[i] = []byte(s)
	}
	return vals
}

// PlusRounds returns ROUNDS(Π_BA+) in the worst case (both agree-confirm
// stages run) for corruption budget t.
func PlusRounds(t int) int {
	return 2 + 2*(ba.MultivaluedRounds(t)+ba.BinaryRounds(t))
}
