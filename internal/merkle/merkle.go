// Package merkle implements the Merkle-tree cryptographic accumulator used
// by the paper's Π_ℓBA+ (Section 7): MT.BUILD compresses a sequence of
// values into a κ-bit root, and per-leaf witnesses of O(κ·log n) bits let
// any party verify that a value sits at a claimed position under a claimed
// root (MT.VERIFY).
//
// The tree shape follows RFC 6962: a list of size > 1 splits at the largest
// power of two strictly smaller than the size. Leaf and interior hashes are
// domain-separated, which (together with SHA-256's collision resistance)
// prevents an adversary from presenting an interior node as a leaf or
// forging witnesses for values it did not commit to.
package merkle

import (
	"errors"
	"fmt"

	"convexagreement/internal/hashing"
	"convexagreement/internal/pool"
)

// Domain-separation prefixes (RFC 6962).
var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// ErrBuild reports invalid Build input.
var ErrBuild = errors.New("merkle: cannot build tree")

// Tree is an immutable Merkle tree over a sequence of leaves. It retains all
// internal node hashes so witnesses are produced in O(log n) time.
type Tree struct {
	n      int
	leaves []hashing.Digest
	root   hashing.Digest
	// memo caches subtree roots keyed by [lo,hi) ranges encountered during
	// construction; ranges are unique in the RFC 6962 decomposition.
	memo map[[2]int]hashing.Digest
}

// Build constructs the tree for the given leaf values (the paper's
// MT.BUILD). It requires at least one leaf.
func Build(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("%w: no leaves", ErrBuild)
	}
	t := &Tree{
		n:      len(leaves),
		leaves: make([]hashing.Digest, len(leaves)),
		memo:   make(map[[2]int]hashing.Digest, 2*len(leaves)),
	}
	// Leaf hashing is embarrassingly parallel — each digest lands in its own
	// slot of t.leaves — so it fans out across the pool in chunks, one
	// reusable Hasher per chunk (a shared hash state turns the one-shot Sum
	// calls into allocation-free Reset/Write/Sum cycles, and per-chunk
	// states keep the fan-out race-free). Results are position-addressed, so
	// the tree is bit-identical to the serial build regardless of
	// scheduling. Small trees skip the fan-out: below the threshold the
	// dispatch overhead exceeds the hashing itself.
	if len(leaves) >= parallelLeafMin && pool.Workers() > 1 {
		pool.ForEachChunk(len(leaves), leafGrain, func(lo, hi int) {
			h := hashing.NewHasher()
			for i := lo; i < hi; i++ {
				h.Reset()
				h.Write(leafPrefix)
				h.Write(leaves[i])
				t.leaves[i] = h.Digest()
			}
		})
	} else {
		h := hashing.NewHasher()
		for i, leaf := range leaves {
			h.Reset()
			h.Write(leafPrefix)
			h.Write(leaf)
			t.leaves[i] = h.Digest()
		}
	}
	// The interior build stays serial: it is a strict tree dependency and,
	// at ~n interior hashes over in-cache digests, is not the bottleneck.
	t.root = t.build(hashing.NewHasher(), 0, t.n)
	return t, nil
}

// Fan-out tuning for Build: a leaf hash costs a few hundred nanoseconds, so
// chunks of leafGrain leaves amortize the pool's per-claim overhead, and
// trees smaller than parallelLeafMin leaves hash serially.
const (
	parallelLeafMin = 64
	leafGrain       = 32
)

// N returns the number of leaves.
func (t *Tree) N() int { return t.n }

// Root returns the κ-bit accumulator value z.
func (t *Tree) Root() hashing.Digest { return t.root }

// split returns the RFC 6962 split point for a range of the given size: the
// largest power of two strictly smaller than size.
func split(size int) int {
	k := 1
	for k*2 < size {
		k *= 2
	}
	return k
}

// build hashes the subtree over [lo,hi) bottom-up, memoizing every interior
// range. The RFC 6962 decomposition visits each range exactly once, so no
// memo lookup is needed on the way down.
func (t *Tree) build(h *hashing.Hasher, lo, hi int) hashing.Digest {
	if hi-lo == 1 {
		return t.leaves[lo]
	}
	mid := lo + split(hi-lo)
	l := t.build(h, lo, mid)
	r := t.build(h, mid, hi)
	h.Reset()
	h.Write(nodePrefix)
	h.WriteDigest(l)
	h.WriteDigest(r)
	d := h.Digest()
	t.memo[[2]int{lo, hi}] = d
	return d
}

// node returns the digest of the subtree over [lo,hi) without hashing:
// Build memoized every interior range in the decomposition, and those are
// exactly the ranges Witness walks, so this is always a hit.
func (t *Tree) node(lo, hi int) hashing.Digest {
	if hi-lo == 1 {
		return t.leaves[lo]
	}
	return t.memo[[2]int{lo, hi}]
}

// Witness returns the audit path for leaf i: the sibling hashes from the
// leaf to the root, leaf-adjacent first. This is the w_i of the paper, of
// size O(κ·log n).
func (t *Tree) Witness(i int) ([]hashing.Digest, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", i, t.n)
	}
	var path []hashing.Digest
	lo, hi := 0, t.n
	for hi-lo > 1 {
		mid := lo + split(hi-lo)
		if i < mid {
			path = append(path, t.node(mid, hi))
			hi = mid
		} else {
			path = append(path, t.node(lo, mid))
			lo = mid
		}
	}
	// The path was collected root-first; reverse to leaf-adjacent first.
	for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
		path[a], path[b] = path[b], path[a]
	}
	return path, nil
}

// Verify is the paper's MT.VERIFY(z, i, s_i, w_i): it reports whether
// witness proves that value sits at leaf index i of an n-leaf tree whose
// root is root. It never panics, whatever the (possibly byzantine) inputs.
func Verify(root hashing.Digest, i, n int, value []byte, witness []hashing.Digest) bool {
	if i < 0 || i >= n || n < 1 {
		return false
	}
	h := hashing.NewHasher() // shared across the log n path recomputations
	digest, used, ok := recompute(h, i, 0, n, value, witness)
	return ok && used == len(witness) && digest == root
}

func recompute(h *hashing.Hasher, i, lo, hi int, value []byte, witness []hashing.Digest) (hashing.Digest, int, bool) {
	if hi-lo == 1 {
		h.Reset()
		h.Write(leafPrefix)
		h.Write(value)
		return h.Digest(), 0, true
	}
	mid := lo + split(hi-lo)
	var child hashing.Digest
	var used int
	var ok bool
	if i < mid {
		child, used, ok = recompute(h, i, lo, mid, value, witness)
	} else {
		child, used, ok = recompute(h, i, mid, hi, value, witness)
	}
	if !ok || used >= len(witness) {
		return hashing.Digest{}, 0, false
	}
	sib := witness[used]
	h.Reset()
	h.Write(nodePrefix)
	if i < mid {
		h.WriteDigest(child)
		h.WriteDigest(sib)
	} else {
		h.WriteDigest(sib)
		h.WriteDigest(child)
	}
	d := h.Digest()
	return d, used + 1, true
}

// WitnessSize returns the number of digests in a witness for an n-leaf tree
// and leaf index i (used for communication accounting).
func WitnessSize(i, n int) int {
	count := 0
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := lo + split(hi-lo)
		if i < mid {
			hi = mid
		} else {
			lo = mid
		}
		count++
	}
	return count
}

// MarshalWitness flattens a witness for the wire.
func MarshalWitness(w []hashing.Digest) []byte {
	out := make([]byte, 0, len(w)*hashing.Size)
	for _, d := range w {
		out = append(out, d[:]...)
	}
	return out
}

// UnmarshalWitness parses a witness from the wire; it rejects lengths that
// are not a whole number of digests.
func UnmarshalWitness(raw []byte) ([]hashing.Digest, bool) {
	if len(raw)%hashing.Size != 0 {
		return nil, false
	}
	w := make([]hashing.Digest, len(raw)/hashing.Size)
	for i := range w {
		copy(w[i][:], raw[i*hashing.Size:])
	}
	return w, true
}
