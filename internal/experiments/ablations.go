package experiments

import (
	"fmt"
	"math/big"
	"math/rand"

	ca "convexagreement"

	"convexagreement/internal/aa"
	"convexagreement/internal/baplus"
	"convexagreement/internal/sim"
	"convexagreement/internal/testutil"
	"convexagreement/internal/transport"
)

// E12CAvsAA contrasts Convex Agreement with its historical ancestor,
// Approximate Agreement (§1.1 of the paper): AA pays Θ(ℓn²) bits per
// iteration and only ever reaches ε-agreement, while CA reaches *exact*
// agreement in O(ℓn + poly(n, κ)) bits. For long inputs the exact protocol
// is cheaper than even coarse approximation.
func E12CAvsAA(quick bool) Table {
	n := 7
	t := defaultT(n)
	ells := []int{16, 64, 4096, 16384, 65536}
	if quick {
		ells = []int{16, 64, 4096}
	}
	tbl := Table{
		ID:     "E12",
		Title:  fmt.Sprintf("Convex Agreement vs Approximate Agreement at n=%d, t=%d", n, t),
		Claim:  "§1.1/§1.2: AA = Θ(ℓn²)·log(D/ε) bits for ε-agreement; CA = exact agreement at O(ℓn + poly(n,κ)); CA wins for long inputs",
		Header: []string{"ell_bits", "aa_precision", "aa_bits", "aa_rounds", "ca_bits", "ca_rounds", "aa/ca_bits"},
	}
	rng := rand.New(rand.NewSource(12))
	for _, ell := range ells {
		inputs := randInputs(rng, n, ell)
		diameter := new(big.Int).Lsh(big.NewInt(1), uint(ell))
		// Full precision (ε = 1) for short inputs; a realistic 16 most
		// significant bits of precision (ε = D/2^16) for long ones — AA's
		// iteration count is log₂(D/ε), so ε = 1 at ℓ = 65536 would mean
		// 65539 all-to-all iterations.
		eps := big.NewInt(1)
		precision := "full (ε=1)"
		if ell > 64 {
			eps = new(big.Int).Lsh(big.NewInt(1), uint(ell-16))
			precision = "16 bits (ε=D/2^16)"
		}
		aaRes := runAA(n, t, inputs, diameter, eps)
		caRes := mustAgree(inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 12})
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", ell),
			precision,
			fmtBits(aaRes.HonestBits),
			fmt.Sprintf("%d", aaRes.Rounds),
			fmtBits(caRes.HonestBits),
			fmt.Sprintf("%d", caRes.Rounds),
			fmt.Sprintf("%.2fx", float64(aaRes.HonestBits)/float64(caRes.HonestBits)),
		})
	}
	return tbl
}

// runAA executes one Approximate Agreement instance over the simulator and
// returns its cost report.
func runAA(n, t int, inputs []*big.Int, diameter, eps *big.Int) *sim.Report {
	res, err := testutil.Run(sim.Config{N: n, T: t}, nil,
		func(env *sim.Env) (*big.Int, error) {
			return aa.Run(env, "aa", inputs[env.ID()], diameter, eps)
		})
	if err != nil {
		panic(fmt.Sprintf("experiments: aa: %v", err))
	}
	return res.Report
}

// E11ParallelComposition is the round-complexity ablation for the
// broadcast baseline: composing its n broadcast instances in parallel
// (package mux) leaves the Θ(ℓn²) bit cost untouched but collapses the
// round count from n sequential broadcasts to one — the gap the
// synchronous model's parallel-composition folklore predicts (and a gap
// the paper's protocol never pays, since it runs O(log n) sequential
// building blocks in the first place).
func E11ParallelComposition(quick bool) Table {
	ell := 1 << 12
	ns := []int{4, 7, 10, 13}
	if quick {
		ns = []int{4, 7, 10}
	}
	tbl := Table{
		ID:     "E11",
		Title:  fmt.Sprintf("Ablation: sequential vs parallel broadcast-CA at ℓ=%d bits", ell),
		Claim:  "parallel composition: same Θ(ℓn²) bits, rounds drop from Θ(n)·ROUNDS(BC) to ROUNDS(BC); optimal protocol shown for scale",
		Header: []string{"n", "seq_rounds", "par_rounds", "round_drop", "seq_bits", "par_bits", "optimal_rounds"},
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range ns {
		inputs := randInputs(rng, n, ell)
		seq := mustAgree(inputs, ca.Options{Protocol: ca.ProtoBroadcast, Seed: 11})
		par := mustAgree(inputs, ca.Options{Protocol: ca.ProtoBroadcastParallel, Seed: 11})
		opt := mustAgree(inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 11})
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", seq.Rounds),
			fmt.Sprintf("%d", par.Rounds),
			fmt.Sprintf("%.1fx", float64(seq.Rounds)/float64(par.Rounds)),
			fmtBits(seq.HonestBits),
			fmtBits(par.HonestBits),
			fmt.Sprintf("%d", opt.Rounds),
		})
	}
	return tbl
}

// E16DispersalAblation isolates the paper's key dispersal mechanism: the
// same Π_ℓBA+ agreement with Reed-Solomon + Merkle dispersal (Long) versus
// naive whole-value rebroadcast (LongNaive), on a value all honest parties
// share. Coded dispersal is the entire difference between the paper's
// O(ℓn) and the prior works' Θ(ℓn²).
func E16DispersalAblation(quick bool) Table {
	ellBytes := 16 << 10
	ns := []int{4, 7, 10, 13}
	if quick {
		ns = []int{4, 7, 10}
	}
	tbl := Table{
		ID:     "E16",
		Title:  fmt.Sprintf("Dispersal ablation: RS+Merkle vs naive rebroadcast in Π_ℓBA+ (ℓ=%d bits)", 8*ellBytes),
		Claim:  "Thm 1 mechanism: coded dispersal keeps the ℓ-term at O(ℓn); removing it degrades to Θ(ℓn²)",
		Header: []string{"n", "coded_bits", "naive_bits", "naive/coded", "coded_per_ln", "naive_per_ln"},
	}
	value := make([]byte, ellBytes)
	rand.New(rand.NewSource(16)).Read(value)
	for _, n := range ns {
		coded := runLBA(n, value, baplusLong)
		naive := runLBA(n, value, baplusLongNaive)
		ln := float64(8*ellBytes) * float64(n)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtBits(coded),
			fmtBits(naive),
			fmt.Sprintf("%.1fx", float64(naive)/float64(coded)),
			fmt.Sprintf("%.2f", float64(coded)/ln),
			fmt.Sprintf("%.2f", float64(naive)/ln),
		})
	}
	return tbl
}

type lbaRunner func(env transport.Net, tag string, input []byte) ([]byte, bool, error)

func baplusLong(env transport.Net, tag string, input []byte) ([]byte, bool, error) {
	return baplus.Long(env, tag, input)
}

func baplusLongNaive(env transport.Net, tag string, input []byte) ([]byte, bool, error) {
	return baplus.LongNaive(env, tag, input)
}

// runLBA measures one Π_ℓBA+ instance where all honest parties share value.
func runLBA(n int, value []byte, proto lbaRunner) int64 {
	t := defaultT(n)
	res, err := testutil.Run(sim.Config{N: n, T: t}, nil,
		func(env *sim.Env) (bool, error) {
			_, ok, err := proto(env, "lba", value)
			return ok, err
		})
	if err != nil {
		panic(fmt.Sprintf("experiments: lba: %v", err))
	}
	return res.Report.HonestBits
}
