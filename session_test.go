package convexagreement_test

import (
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	ca "convexagreement"
)

// TestSessionSequentialInstancesOverTCP runs three back-to-back agreement
// instances (two CA, one approximate) over one TCP mesh.
func TestSessionSequentialInstancesOverTCP(t *testing.T) {
	const n = 4
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	type outcome struct {
		first, second, approx *big.Int
	}
	results := make([]outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := ca.DialTCP(ca.TCPConfig{
				ID: i, Addrs: addrs, Delta: 3 * time.Second, Listener: listeners[i],
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer tr.Close()
			s := ca.NewSession(tr)
			o := outcome{}
			if o.first, err = s.Agree(ca.ProtoOptimal, 0, big.NewInt(int64(10+i))); err != nil {
				errs[i] = err
				return
			}
			if o.second, err = s.Agree(ca.ProtoOptimal, 0, big.NewInt(int64(-5*i))); err != nil {
				errs[i] = err
				return
			}
			if o.approx, err = s.ApproxAgree(big.NewInt(int64(100*i)), big.NewInt(1000), big.NewInt(8)); err != nil {
				errs[i] = err
				return
			}
			if s.Seq() != 3 {
				errs[i] = err
			}
			results[i] = o
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if results[i].first.Cmp(results[0].first) != 0 || results[i].second.Cmp(results[0].second) != 0 {
			t.Fatalf("session disagreement at party %d", i)
		}
	}
	if !ca.InHull(results[0].first, ints(10, 11, 12, 13)) {
		t.Errorf("first output %v outside hull", results[0].first)
	}
	if !ca.InHull(results[0].second, ints(0, -5, -10, -15)) {
		t.Errorf("second output %v outside hull", results[0].second)
	}
	// Approximate instance: ε-close, within [0, 300].
	for i := 1; i < n; i++ {
		d := new(big.Int).Sub(results[i].approx, results[0].approx)
		if d.Abs(d).Cmp(big.NewInt(8)) > 0 {
			t.Fatalf("approx outputs differ beyond ε")
		}
	}
	if !ca.InHull(results[0].approx, ints(0, 100, 200, 300)) {
		t.Errorf("approx output %v outside hull", results[0].approx)
	}
}

func TestRunPartyApproxValidation(t *testing.T) {
	if _, err := ca.RunPartyApprox(nil, nil, big.NewInt(1), big.NewInt(1)); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := ca.RunPartyApprox(nil, big.NewInt(-1), big.NewInt(1), big.NewInt(1)); err == nil {
		t.Error("negative input accepted")
	}
}
