package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.Raw([]byte{1, 2, 3})
	raw := w.Finish()

	r := NewReader(raw)
	if got := r.Byte(); got != 7 {
		t.Errorf("byte = %d", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("bytes = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty bytes = %q", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("raw = %v", got)
	}
	if err := r.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestTruncations(t *testing.T) {
	w := NewWriter(0)
	w.Bytes([]byte("abcdef"))
	raw := w.Finish()
	for cut := 0; cut < len(raw); cut++ {
		r := NewReader(raw[:cut])
		r.Bytes()
		if err := r.Close(); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	w := NewWriter(0)
	w.Byte(1)
	raw := append(w.Finish(), 0xee)
	r := NewReader(raw)
	r.Byte()
	if err := r.Close(); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestHugeLengthRejected(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1 << 62) // bogus length prefix
	r := NewReader(w.Finish())
	if got := r.Bytes(); got != nil {
		t.Errorf("got %d bytes from bogus prefix", len(got))
	}
	if r.Err() == nil {
		t.Error("huge length accepted")
	}
	r2 := NewReader(w.Finish())
	if r2.Int(); r2.Err() == nil {
		t.Error("huge int accepted")
	}
}

func TestErrorsSticky(t *testing.T) {
	r := NewReader(nil)
	r.Byte() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads must be inert.
	if r.Byte() != 0 || r.Uvarint() != 0 || r.Bytes() != nil || r.Raw(2) != nil || r.Int() != 0 {
		t.Error("reads after error returned data")
	}
}

func TestRawBounds(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if r.Raw(-1) != nil || r.Err() == nil {
		t.Error("negative raw accepted")
	}
	r2 := NewReader([]byte{1, 2})
	if r2.Raw(3) != nil || r2.Err() == nil {
		t.Error("overlong raw accepted")
	}
}

func TestBytesCopyIsIndependent(t *testing.T) {
	w := NewWriter(0)
	w.Bytes([]byte{9, 9, 9})
	raw := w.Finish()
	r := NewReader(raw)
	got := r.Bytes()
	raw[len(raw)-1] = 0
	if got[2] != 9 {
		t.Error("decoded bytes alias the input buffer")
	}
}

func TestFuzzRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		raw := make([]byte, rng.Intn(64))
		rng.Read(raw)
		r := NewReader(raw)
		// A representative decode schedule.
		r.Byte()
		r.Uvarint()
		r.Bytes()
		r.Int()
		r.Raw(4)
		_ = r.Close()
	}
}
