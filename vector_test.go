package convexagreement_test

import (
	"math/big"
	"math/rand"
	"testing"

	ca "convexagreement"
)

func vecs(rows ...[]int64) [][]*big.Int {
	out := make([][]*big.Int, len(rows))
	for i, row := range rows {
		out[i] = ints(row...)
	}
	return out
}

// boxCheck verifies coordinate-wise validity.
func boxCheck(t *testing.T, output []*big.Int, honest [][]*big.Int) {
	t.Helper()
	for c := range output {
		col := make([]*big.Int, 0, len(honest))
		for _, vec := range honest {
			col = append(col, vec[c])
		}
		if !ca.InHull(output[c], col) {
			t.Fatalf("coordinate %d: %v outside honest range", c, output[c])
		}
	}
}

func TestAgreeVectorBasic(t *testing.T) {
	inputs := vecs(
		[]int64{10, -5, 100},
		[]int64{12, -7, 90},
		[]int64{11, -6, 95},
		[]int64{13, -4, 105},
	)
	res, err := ca.AgreeVector(inputs, ca.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 3 {
		t.Fatalf("dimension %d", len(res.Output))
	}
	boxCheck(t, res.Output, inputs)
	if len(res.Outputs) != 4 || res.Rounds == 0 || res.HonestBits == 0 {
		t.Error("result incomplete")
	}
}

func TestAgreeVectorGhostExtremes(t *testing.T) {
	inputs := vecs(
		[]int64{100, 200},
		[]int64{101, 201},
		nil, // corrupted
		[]int64{102, 202},
		[]int64{103, 203},
		nil, // corrupted
		[]int64{104, 204},
	)
	corr := map[int]ca.Corruption{
		2: {Kind: ca.AdvGhost, InputVector: ints(-1<<40, 1<<40)},
		5: {Kind: ca.AdvGhost, Input: big.NewInt(0)}, // replicated scalar
	}
	var honest [][]*big.Int
	for i, vec := range inputs {
		if _, bad := corr[i]; !bad {
			honest = append(honest, vec)
		}
	}
	res, err := ca.AgreeVector(inputs, ca.Options{Corruptions: corr, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	boxCheck(t, res.Output, honest)
}

func TestAgreeVectorNetworkAdversaries(t *testing.T) {
	inputs := vecs(
		[]int64{1, 2}, []int64{3, 4}, nil, []int64{5, 6},
		[]int64{7, 8}, []int64{9, 10}, nil,
	)
	corr := map[int]ca.Corruption{
		2: {Kind: ca.AdvEquivocate},
		6: {Kind: ca.AdvGarbage},
	}
	var honest [][]*big.Int
	for i, vec := range inputs {
		if _, bad := corr[i]; !bad {
			honest = append(honest, vec)
		}
	}
	res, err := ca.AgreeVector(inputs, ca.Options{Corruptions: corr, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	boxCheck(t, res.Output, honest)
}

// TestAgreeVectorRoundsFlatInDimension checks the mux payoff: tripling the
// dimension must not triple the rounds (they stay within a whisker of the
// scalar count).
func TestAgreeVectorRoundsFlatInDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mk := func(d int) [][]*big.Int {
		out := make([][]*big.Int, 4)
		for i := range out {
			vec := make([]*big.Int, d)
			for c := range vec {
				vec[c] = big.NewInt(int64(rng.Intn(1 << 16)))
			}
			out[i] = vec
		}
		return out
	}
	r1, err := ca.AgreeVector(mk(1), ca.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ca.AgreeVector(mk(3), ca.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Rounds > r1.Rounds*2 {
		t.Errorf("rounds grew from %d to %d with dimension; composition is not parallel", r1.Rounds, r3.Rounds)
	}
	if r3.HonestBits < 2*r1.HonestBits {
		t.Errorf("bits %d vs %d: expected ≈3× growth in dimension", r3.HonestBits, r1.HonestBits)
	}
}

func TestAgreeVectorValidation(t *testing.T) {
	if _, err := ca.AgreeVector(nil, ca.Options{}); err == nil {
		t.Error("no inputs accepted")
	}
	if _, err := ca.AgreeVector(vecs([]int64{1}, []int64{2, 3}, []int64{4}, []int64{5}), ca.Options{}); err == nil {
		t.Error("ragged dimensions accepted")
	}
	if _, err := ca.AgreeVector(vecs(nil, nil, nil, nil), ca.Options{}); err == nil {
		t.Error("empty vectors accepted")
	}
	bad := vecs([]int64{1}, []int64{2}, []int64{3}, []int64{4})
	bad[1][0] = nil
	if _, err := ca.AgreeVector(bad, ca.Options{}); err == nil {
		t.Error("nil coordinate accepted")
	}
	if _, err := ca.AgreeVector(vecs([]int64{1}, []int64{2}, []int64{3}, []int64{4}),
		ca.Options{Corruptions: map[int]ca.Corruption{0: {Kind: ca.AdvGhost}}}); err == nil {
		t.Error("ghost without any input accepted")
	}
	if _, err := ca.AgreeVector(vecs([]int64{1, 2}, []int64{2, 3}, []int64{3, 4}, []int64{4, 5}),
		ca.Options{Corruptions: map[int]ca.Corruption{0: {Kind: ca.AdvGhost, InputVector: ints(1)}}}); err == nil {
		t.Error("wrong-dimension ghost vector accepted")
	}
}
