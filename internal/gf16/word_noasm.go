//go:build !amd64 && !arm64

package gf16

// Targets without an assembly kernel always take the generic word path.
const hasFastPath = false

// dotWordsVec is never called when hasFastPath is false; this stub keeps
// the portable build compiling without build-tagging the call sites.
func dotWordsVec(tabs *byte, k int, dstLo, dstHi, colsLo, colsHi *byte, stride, n int) {
	panic("gf16: vector kernel unavailable")
}
