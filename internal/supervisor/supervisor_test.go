package supervisor

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func fastCfg() Config {
	return Config{
		Delta:       2 * time.Millisecond,
		StallRounds: 4,
		MaxRestarts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

func TestRunSucceedsFirstTry(t *testing.T) {
	h, err := Run(fastCfg(), func(a *Attempt) error {
		var r atomic.Uint64
		a.Progress(r.Load)
		r.Store(17)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Attempts != 1 || h.Stalls != 0 || h.LastRound != 17 {
		t.Errorf("health = %+v", h)
	}
}

func TestRunRestartsAfterError(t *testing.T) {
	fails := 2
	h, err := Run(fastCfg(), func(a *Attempt) error {
		if a.Number < fails {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Attempts != fails+1 {
		t.Errorf("attempts = %d, want %d", h.Attempts, fails+1)
	}
}

func TestRunExhaustsBudget(t *testing.T) {
	boom := errors.New("boom")
	h, err := Run(fastCfg(), func(a *Attempt) error { return boom })
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v, want ErrRestartsExhausted", err)
	}
	if h.Attempts != 4 { // MaxRestarts=3 → 4 runs
		t.Errorf("attempts = %d, want 4", h.Attempts)
	}
	var he *HealthError
	if !errors.As(err, &he) || !errors.Is(he.Health.LastErr, boom) {
		t.Errorf("health error = %v", err)
	}
}

func TestRunDetectsStallAndAborts(t *testing.T) {
	aborted := make(chan struct{})
	h, err := Run(fastCfg(), func(a *Attempt) error {
		if a.Number > 0 {
			return nil // recovered on restart
		}
		var r atomic.Uint64
		a.Progress(r.Load)
		a.AbortOnStall(func() { close(aborted) })
		<-aborted // stall until the watchdog fires the abort
		return errors.New("transport closed")
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stalls != 1 || h.Attempts != 2 {
		t.Errorf("health = %+v", h)
	}
}

func TestRunStalledPartyNeverReturns(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, err := Run(fastCfg(), func(a *Attempt) error {
		a.AbortOnStall(func() {}) // abort is a no-op; the party hangs
		<-release
		return nil
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestRunQuorumLost(t *testing.T) {
	cfg := fastCfg()
	cfg.N, cfg.T = 7, 2
	h, err := Run(cfg, func(a *Attempt) error {
		a.ReportPeers(4) // < n-t = 5
		return errors.New("peers gone")
	})
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
	if h.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no restart against a dead mesh)", h.Attempts)
	}
	if h.LivePeers != 4 {
		t.Errorf("live peers = %d", h.LivePeers)
	}
}

func TestRunQuorumHeldRestarts(t *testing.T) {
	cfg := fastCfg()
	cfg.N, cfg.T = 7, 2
	h, err := Run(cfg, func(a *Attempt) error {
		a.ReportPeers(5) // exactly n-t: quorum holds
		if a.Number == 0 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", h.Attempts)
	}
}

func TestRunRequiresDelta(t *testing.T) {
	if _, err := Run(Config{}, func(a *Attempt) error { return nil }); err == nil {
		t.Fatal("want error for missing Delta")
	}
}

func TestProgressKeepsPartyAlive(t *testing.T) {
	// A party that keeps advancing its round counter must not be declared
	// stalled even when one round takes longer than Δ.
	cfg := fastCfg()
	var r atomic.Uint64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(cfg.Delta):
				r.Add(1)
			}
		}
	}()
	defer close(stop)
	h, err := Run(cfg, func(a *Attempt) error {
		a.Progress(r.Load)
		a.AbortOnStall(func() { t.Error("abort fired for a live party") })
		time.Sleep(time.Duration(cfg.StallRounds*3) * cfg.Delta)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stalls != 0 {
		t.Errorf("stalls = %d, want 0", h.Stalls)
	}
}

func TestReportDemotionsSurfaced(t *testing.T) {
	reported := map[string]int{"rate": 2, "budget": 1}
	h, err := Run(fastCfg(), func(a *Attempt) error {
		a.ReportDemotions(reported)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Demotions["rate"] != 2 || h.Demotions["budget"] != 1 {
		t.Fatalf("Demotions = %v, want rate:2 budget:1", h.Demotions)
	}
	// The report is a copy: caller mutations after the fact must not leak in.
	reported["rate"] = 99
	if h.Demotions["rate"] != 2 {
		t.Fatal("ReportDemotions aliases the caller's map")
	}
	// The overload tally renders deterministically (sorted by reason).
	if want := "demotions=budget:1,rate:2"; !strings.Contains(h.String(), want) {
		t.Fatalf("Health.String() = %q, want it to contain %q", h.String(), want)
	}
}

func TestReportDemotionsKeptFromFailedAttempt(t *testing.T) {
	// A party that dies mid-attack still leaves its overload signal in the
	// terminal health report.
	var runs atomic.Int32
	_, err := Run(Config{
		Delta:       2 * time.Millisecond,
		StallRounds: 4,
		MaxRestarts: 1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}, func(a *Attempt) error {
		if runs.Add(1) == 1 {
			a.ReportDemotions(map[string]int{"stall": 1})
		}
		return errors.New("boom")
	})
	var he *HealthError
	if !errors.As(err, &he) {
		t.Fatalf("want *HealthError, got %v", err)
	}
	if he.Health.Demotions["stall"] != 1 {
		t.Fatalf("Demotions = %v, want stall:1 carried across attempts", he.Health.Demotions)
	}
}

// TestReportMuxSurfaced: multiplexer counters land in Health and render
// with the coalescing ratio and combined shed count.
func TestReportMuxSurfaced(t *testing.T) {
	h, err := Run(fastCfg(), func(a *Attempt) error {
		a.ReportMux(MuxStats{
			Ticks:           4,
			Packets:         64,
			BytesReferenced: 4096,
			SessionShed:     2,
			TickShed:        1,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Mux == nil || h.Mux.Packets != 64 || h.Mux.Coalescing() != 16 {
		t.Fatalf("Health.Mux = %+v, want 64 packets at coalescing 16", h.Mux)
	}
	if want := "mux=ticks:4,coalesced:16.0,shed:3"; !strings.Contains(h.String(), want) {
		t.Fatalf("Health.String() = %q, want it to contain %q", h.String(), want)
	}
}
