// Package sessmux multiplexes many independent agreement SESSIONS over one
// physical per-peer link set. It generalizes package mux one level up: mux
// composes k instances of equal shape inside one protocol run; sessmux
// composes whole protocol runs — each session has its own participant
// count n, corruption budget t, inputs, and lifecycle — over a shared
// transport, so a deployment holds one TCP mesh open instead of one per
// agreement.
//
// # Scheduling model
//
// The mux advances in ticks. One tick is one physical round of the base
// transport and carries exactly one virtual round of every live local
// session: a tick closes when all live sessions have submitted their
// round (Exchange), the merged traffic ships as one base round — on a
// VecNet base every session's frames for the same peer coalesce into the
// same writev, payloads by reference — and the inbox demultiplexes by
// session id. The base transport's blocking round is the cross-party
// synchronizer: parties whose session sets differ still tick in lock
// step, and a party with no live sessions keeps the clock with Idle.
//
// # Lock-step contract
//
// Every participant of session sid must open it at the same tick with the
// same (n, t), and its participants are base parties 0..n-1. Closing is
// local: a closed session simply stops contributing traffic, which peers
// observe as omission — one session's failure never tears down its
// siblings (unlike mux, whose instances abort together, sessions are
// independent protocol runs with independent fates).
//
// # Backpressure
//
// Two deterministic bounds extend the mux inboxBound policy to the
// session axis. Per session: at most sessionBound messages per tick,
// shedding the heaviest sender's oldest message (a flooding peer degrades
// itself). Per tick: at most tickBound messages across all sessions,
// shedding from the heaviest session (ties to the lowest sid) — one
// flooded session degrades itself before it starves a sibling. Both
// policies are pure functions of delivery order, so fault-injection
// replays stay digest-exact.
package sessmux

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"convexagreement/internal/transport"
)

// ErrClosed reports an Exchange on a session that was closed locally.
var ErrClosed = errors.New("sessmux: session closed")

// Mux multiplexes sessions over one base transport. Create with New, open
// sessions with Open, keep the tick clock with Idle when none are live.
type Mux struct {
	base transport.Net
	vec  transport.VecNet // non-nil when the base takes scatter-gather packets

	mu        sync.Mutex
	cond      *sync.Cond
	open      map[uint64]*Session
	retired   map[uint64]bool
	live      int
	submitted int
	tick      uint64
	err       error

	// sessionBound caps one session's inbox per tick (negative: default
	// 64·n_s, resolved per session at demux time; 0: unbounded).
	// tickBound caps the whole tick's deliveries across sessions
	// (negative: default 64·N·live; 0: unbounded).
	sessionBound int
	tickBound    int

	stats   Stats
	shedBy  map[uint64]uint64
	sidsBuf []uint64

	// Scratch for the vec merge path, reused across ticks: the base's
	// ExchangeVec contract frees the pieces when it returns.
	hdrBuf  []byte
	vecBuf  [][]byte
	pktsBuf []transport.VecPacket
}

// Stats are cumulative counters for one Mux. Packets/Ticks is the
// coalescing ratio: how many session frames ride in each physical round
// (on a TCP base, each peer's share of a tick is one writev).
// BytesReferenced counts payload bytes handed to the base by reference
// over the VecNet fast path; BytesCopied counts payload bytes that went
// through the copying merge on a plain base — on a VecNet base it stays 0.
type Stats struct {
	Ticks           uint64 // physical rounds driven
	Packets         uint64 // session frames shipped, all sessions coalesced
	BytesReferenced uint64 // payload bytes sent zero-copy (vec path)
	BytesCopied     uint64 // payload bytes copied into the merge buffer
	SessionShed     uint64 // messages shed by the per-session bound
	TickShed        uint64 // messages shed by the whole-tick bound
}

// New creates a session mux over base. The base must not be driven by
// anyone else from this point on: the mux owns its round clock.
func New(base transport.Net) *Mux {
	m := &Mux{
		base:         base,
		open:         make(map[uint64]*Session),
		retired:      make(map[uint64]bool),
		shedBy:       make(map[uint64]uint64),
		sessionBound: -1,
		tickBound:    -1,
	}
	if vn, ok := base.(transport.VecNet); ok {
		m.vec = vn
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// SetSessionBound caps each session's per-tick inbox (0 or negative:
// unbounded / default 64·n_s). Call before traffic flows.
func (m *Mux) SetSessionBound(bound int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionBound = bound
}

// SetTickBound caps the whole tick's deliveries across sessions (0 or
// negative: unbounded / default 64·N·live). Call before traffic flows.
func (m *Mux) SetTickBound(bound int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tickBound = bound
}

// Stats returns a snapshot of the cumulative counters.
func (m *Mux) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ShedBySession returns per-session shed counts (both bounds combined),
// keyed by sid. Only sessions that shed appear.
func (m *Mux) ShedBySession() map[uint64]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint64]uint64, len(m.shedBy))
	for sid, c := range m.shedBy {
		out[sid] = c
	}
	return out
}

// Live reports the number of locally live sessions.
func (m *Mux) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// Open starts session sid with n participants (base parties 0..n-1) and
// corruption budget t. Every participant must open it at the same tick
// with the same (n, t); this party must be a participant. Session ids are
// single-use — reopening a retired sid would let a peer's late frames
// from the old lifetime leak into the new one, so it is refused.
func (m *Mux) Open(sid uint64, n, t int) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	if n < 1 || n > m.base.N() {
		return nil, fmt.Errorf("sessmux: session %d: n=%d outside 1..%d", sid, n, m.base.N())
	}
	if t < 0 || 3*t >= n {
		return nil, fmt.Errorf("sessmux: session %d: t=%d violates 3t < n=%d", sid, t, n)
	}
	if int(m.base.ID()) >= n {
		return nil, fmt.Errorf("sessmux: session %d: party %d is not a participant (n=%d)", sid, m.base.ID(), n)
	}
	if _, dup := m.open[sid]; dup {
		return nil, fmt.Errorf("sessmux: session %d already open", sid)
	}
	if m.retired[sid] {
		return nil, fmt.Errorf("sessmux: session id %d already used", sid)
	}
	s := &Session{m: m, sid: sid, n: n, t: t}
	m.open[sid] = s
	m.live++
	return s, nil
}

// Idle keeps the tick clock for a party with no live sessions: it drives
// (or waits out) exactly one tick, exchanging nothing. Call it once per
// tick for as long as peers still run sessions this party is not part of.
func (m *Mux) Idle() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	my := m.tick
	if m.live == 0 {
		m.flush()
		return m.err
	}
	for m.tick == my && m.err == nil {
		m.cond.Wait()
	}
	return m.err
}

// Session is one live agreement session: a transport.Net whose rounds are
// the mux's ticks. Drive it from exactly one goroutine; Close it when the
// protocol finishes so sibling sessions stop waiting for it.
type Session struct {
	m   *Mux
	sid uint64
	n   int
	t   int

	pended  bool
	closed  bool
	pending []transport.Packet
	inbox   []transport.Message
}

var _ transport.Net = (*Session)(nil)

// Sid returns the session id.
func (s *Session) Sid() uint64 { return s.sid }

// ID returns this party's identifier — session participants are base
// parties under their base ids.
func (s *Session) ID() transport.PartyID { return s.m.base.ID() }

// N returns the session's participant count.
func (s *Session) N() int { return s.n }

// T returns the session's corruption budget.
func (s *Session) T() int { return s.t }

// Exchange submits this session's virtual round and blocks until the tick
// closes. Packets to parties outside the session are dropped.
func (s *Session) Exchange(out []transport.Packet) ([]transport.Message, error) {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	if s.closed {
		return nil, ErrClosed
	}
	if s.pended {
		return nil, fmt.Errorf("sessmux: session %d submitted its round twice", s.sid)
	}
	my := m.tick
	s.pending = out
	s.pended = true
	m.submitted++
	m.maybeFlush()
	for m.tick == my && m.err == nil {
		m.cond.Wait()
	}
	if m.err != nil {
		return nil, m.err
	}
	return s.inbox, nil
}

// Close retires the session locally. Peers are not told: they observe
// omission from this party, which byzantine-tolerant sessions absorb
// within their corruption budget. Closing between Exchanges (never
// concurrently with one) is the caller's obligation; Run does it right.
func (s *Session) Close() {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.pended {
		s.pended = false
		s.pending = nil
		m.submitted--
	}
	delete(m.open, s.sid)
	m.retired[s.sid] = true
	m.live--
	// The departed session may have been the last holdout of the tick.
	m.maybeFlush()
}

// Run opens a session, executes fn over it, and closes it whatever the
// outcome — the session-scoped counterpart of mux.Run. When a party
// starts several sessions for the same tick, Open them all before driving
// any (Run opens on entry, so concurrent Run calls race on which tick
// each open lands in — fine for staggered workloads, wrong for a batch
// that must start together).
func (m *Mux) Run(sid uint64, n, t int, fn func(net transport.Net) error) error {
	s, err := m.Open(sid, n, t)
	if err != nil {
		return err
	}
	defer s.Close()
	return fn(s)
}

// maybeFlush closes the tick once every live session has submitted.
// Caller holds m.mu; the base Exchange happens under the lock, which is
// safe because every other user of this mux is blocked in cond.Wait.
func (m *Mux) maybeFlush() {
	if m.err != nil || m.live == 0 || m.submitted < m.live {
		return
	}
	m.flush()
}

// flush runs one physical round: merge in ascending session order (map
// order would break seed-exact fault-injection replay), exchange, demux,
// bound, advance the tick. Caller holds m.mu.
func (m *Mux) flush() {
	sids := m.sidsBuf[:0]
	for sid, s := range m.open {
		if s.pended {
			sids = append(sids, sid)
		}
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })

	var in []transport.Message
	var err error
	if m.vec != nil {
		in, err = m.flushVec(sids)
	} else {
		in, err = m.flushCopy(sids)
	}
	if err != nil {
		// A base failure poisons the whole mux: without the shared round
		// clock no session can make progress.
		m.err = fmt.Errorf("sessmux: physical round: %w", err)
		m.cond.Broadcast()
		return
	}
	m.stats.Ticks++
	m.demux(in)

	for _, sid := range sids {
		if s := m.open[sid]; s != nil {
			s.pended = false
			s.pending = nil
		}
	}
	m.sidsBuf = sids
	m.submitted = 0
	m.tick++
	m.cond.Broadcast()
}

// demux routes delivered messages to their sessions and applies both
// bounds. Caller holds m.mu.
func (m *Mux) demux(in []transport.Message) {
	for _, s := range m.open {
		s.inbox = nil
	}
	bound := m.sessionBound
	total := 0
	var counts map[uint64][]int // per session: messages held per sender
	for _, msg := range in {
		sid, payload, ok := unframe(msg.Payload)
		if !ok {
			continue // undecodable byzantine frame
		}
		s := m.open[sid]
		if s == nil || int(msg.From) >= s.n {
			continue // not a local session, or sender not a participant
		}
		b := bound
		if b < 0 {
			b = 64 * s.n
		}
		delivered := transport.Message{From: msg.From, Payload: payload}
		if b > 0 && len(s.inbox) >= b {
			if counts == nil {
				counts = make(map[uint64][]int)
			}
			if counts[sid] == nil {
				counts[sid] = senderCounts(s.inbox, s.n)
			}
			s.inbox = shedInto(s.inbox, counts[sid], delivered)
			m.stats.SessionShed++
			m.shedBy[sid]++
			continue
		}
		s.inbox = append(s.inbox, delivered)
		total++
		if counts != nil && counts[sid] != nil && int(msg.From) < len(counts[sid]) {
			counts[sid][msg.From]++
		}
	}

	tb := m.tickBound
	if tb < 0 {
		tb = 64 * m.base.N() * m.live
	}
	if tb <= 0 || total <= tb {
		return
	}
	// Shed from the heaviest session (ties to the lowest sid), oldest
	// message first, until the tick fits. Iterate over a sorted sid list:
	// determinism again.
	sids := make([]uint64, 0, len(m.open))
	for sid := range m.open {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	for total > tb {
		heavy := -1
		for i := range sids {
			if heavy < 0 || len(m.open[sids[i]].inbox) > len(m.open[sids[heavy]].inbox) {
				heavy = i
			}
		}
		s := m.open[sids[heavy]]
		if len(s.inbox) == 0 {
			break
		}
		s.inbox = s.inbox[1:]
		total--
		m.stats.TickShed++
		m.shedBy[s.sid]++
	}
}

// flushCopy merges the tick's packets for a plain-Net base: one bump
// buffer carries every framed payload (fresh each tick — downstream
// transports retain payloads by reference), each frame carved with a full
// slice expression. Caller holds m.mu.
func (m *Mux) flushCopy(sids []uint64) ([]transport.Message, error) {
	total, packets := 0, 0
	for _, sid := range sids {
		s := m.open[sid]
		for i := range s.pending {
			if p := &s.pending[i]; p.To >= 0 && int(p.To) < s.n {
				total += uvarintLen(sid) + len(p.Payload)
				packets++
			}
		}
	}
	buf := make([]byte, 0, total)
	merged := make([]transport.Packet, 0, packets)
	for _, sid := range sids {
		s := m.open[sid]
		for i := range s.pending {
			p := &s.pending[i]
			if p.To < 0 || int(p.To) >= s.n {
				continue
			}
			mark := len(buf)
			buf = binary.AppendUvarint(buf, sid)
			buf = append(buf, p.Payload...)
			merged = append(merged, transport.Packet{
				To:      p.To,
				Tag:     p.Tag,
				Payload: buf[mark:len(buf):len(buf)],
			})
			m.stats.BytesCopied += uint64(len(p.Payload))
		}
	}
	m.stats.Packets += uint64(packets)
	return m.base.Exchange(merged)
}

// flushVec merges the tick's packets for a VecNet base without copying a
// payload byte: each merged packet is a two-piece vector — session-id
// varint carved from one shared header buffer, payload by reference.
// ExchangeVec frees the pieces on return, so all three scratch slices are
// reused across ticks; they are sized exactly up front because a
// mid-merge regrowth would move the header bytes out from under the
// already-carved varint pieces. Caller holds m.mu.
func (m *Mux) flushVec(sids []uint64) ([]transport.Message, error) {
	hdrLen, packets := 0, 0
	for _, sid := range sids {
		s := m.open[sid]
		for i := range s.pending {
			if p := &s.pending[i]; p.To >= 0 && int(p.To) < s.n {
				hdrLen += uvarintLen(sid)
				packets++
			}
		}
	}
	if cap(m.hdrBuf) < hdrLen {
		m.hdrBuf = make([]byte, 0, hdrLen)
	}
	if cap(m.vecBuf) < 2*packets {
		m.vecBuf = make([][]byte, 0, 2*packets)
	}
	if cap(m.pktsBuf) < packets {
		m.pktsBuf = make([]transport.VecPacket, 0, packets)
	}
	buf, vecs, merged := m.hdrBuf[:0], m.vecBuf[:0], m.pktsBuf[:0]
	for _, sid := range sids {
		s := m.open[sid]
		for i := range s.pending {
			p := &s.pending[i]
			if p.To < 0 || int(p.To) >= s.n {
				continue
			}
			mark := len(buf)
			buf = binary.AppendUvarint(buf, sid)
			vmark := len(vecs)
			vecs = append(vecs, buf[mark:len(buf):len(buf)])
			if len(p.Payload) > 0 {
				vecs = append(vecs, p.Payload)
			}
			merged = append(merged, transport.VecPacket{
				To:  p.To,
				Tag: p.Tag,
				Vec: vecs[vmark:len(vecs):len(vecs)],
			})
			m.stats.BytesReferenced += uint64(len(p.Payload))
		}
	}
	m.stats.Packets += uint64(packets)
	in, err := m.vec.ExchangeVec(merged)
	// The base is done with the pieces; drop the references so the scratch
	// slices don't pin session buffers until the next tick.
	for i := range vecs {
		vecs[i] = nil
	}
	for i := range merged {
		merged[i].Vec = nil
	}
	m.hdrBuf, m.vecBuf, m.pktsBuf = buf, vecs, merged
	return in, err
}

// uvarintLen returns the encoded size of v, so merge buffers can be sized
// exactly (a mid-merge regrowth would cost the allocation the buffer
// exists to avoid — and on the vec path, correctness).
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// unframe splits a session frame; ok=false on malformed input. Everything
// after the session-id varint is the payload.
func unframe(raw []byte) (uint64, []byte, bool) {
	sid, n := binary.Uvarint(raw)
	if n <= 0 {
		return 0, nil, false
	}
	return sid, raw[n:], true
}

// senderCounts tallies messages per sender in box, so the shed policy can
// identify the heaviest sender. Built lazily: honest rounds never hit the
// bound and never pay for it.
func senderCounts(box []transport.Message, n int) []int {
	counts := make([]int, n)
	for _, msg := range box {
		if int(msg.From) < n {
			counts[msg.From]++
		}
	}
	return counts
}

// shedInto applies shed-oldest-from-faulty to a full inbox: the heaviest
// sender (ties to the lowest id — deterministic for replay) is presumed
// the flooder. If the incoming sender is at least as heavy the incoming
// message is dropped; otherwise the heaviest sender's oldest message is
// evicted. Exactly one message is shed either way.
func shedInto(box []transport.Message, counts []int, msg transport.Message) []transport.Message {
	heavy := 0
	for s := 1; s < len(counts); s++ {
		if counts[s] > counts[heavy] {
			heavy = s
		}
	}
	from := int(msg.From)
	if from >= len(counts) || counts[from] >= counts[heavy] {
		return box
	}
	for i, held := range box {
		if int(held.From) == heavy {
			box = append(box[:i], box[i+1:]...)
			break
		}
	}
	counts[heavy]--
	counts[from]++
	return append(box, msg)
}
