package tcpnet_test

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"convexagreement/internal/tcpnet"
	"convexagreement/internal/transport"
)

// rawPeer dials party 0's listener and handshakes as party 1, returning the
// raw socket so the test can speak arbitrary bytes on an authenticated link.
func rawPeer(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte{1, 0}); err != nil { // hello: id 1, round 0
		t.Fatal(err)
	}
	// The accepting side replies with its own (id, round) hello; drain it so
	// the test's raw writes are the next thing the peer parses.
	reply := make([]byte, 2)
	if _, err := io.ReadFull(conn, reply); err != nil {
		t.Fatal(err)
	}
	return conn
}

// dialParty0 establishes party 0's side of a 2-party mesh whose peer is a
// raw socket driven by the test.
func dialParty0(t *testing.T, cfgs []tcpnet.Config) (*tcpnet.Conn, net.Conn) {
	t.Helper()
	var (
		conn *tcpnet.Conn
		err  error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err = tcpnet.Dial(cfgs[0])
	}()
	raw := rawPeer(t, cfgs[0].Addrs[0])
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, raw
}

// waitFaulty polls until the peer set demoted to silent matches want.
func waitFaulty(t *testing.T, conn *tcpnet.Conn, want []int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		got := conn.Faulty()
		if len(got) == len(want) {
			match := true
			for i := range got {
				if got[i] != want[i] {
					match = false
				}
			}
			if match {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("Faulty() = %v, want %v", conn.Faulty(), want)
}

// TestGarbledFrameDemotesPeer: a peer whose length prefix is a malformed
// varint is a protocol violator — demoted to silent, surfaced via Faulty,
// and never waited Δ for again.
func TestGarbledFrameDemotesPeer(t *testing.T) {
	cfgs := newCluster(t, 2, 0)
	cfgs[0].Delta = 300 * time.Millisecond
	conn, raw := dialParty0(t, cfgs)
	// An 11-byte varint can never terminate: protocol violation.
	if _, err := raw.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	waitFaulty(t, conn, []int{1})
	// Rounds now close immediately: no live peers to wait for.
	start := time.Now()
	in, err := transport.ExchangeAll(conn, "x", []byte{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 || in[0].From != 0 {
		t.Fatalf("got %v, want only self-delivery", in)
	}
	if elapsed := time.Since(start); elapsed > cfgs[0].Delta {
		t.Fatalf("round over a demoted peer took %v (waited Δ for it)", elapsed)
	}
}

// TestOversizedFrameDemotesPeer: a frame announcing a body over the 64 MiB
// cap is rejected on the prefix alone — no allocation — and the peer is
// demoted to silent.
func TestOversizedFrameDemotesPeer(t *testing.T) {
	cfgs := newCluster(t, 2, 0)
	cfgs[0].Delta = 300 * time.Millisecond
	conn, raw := dialParty0(t, cfgs)
	var hdr [binary.MaxVarintLen64]byte
	m := binary.PutUvarint(hdr[:], (64<<20)+1)
	if _, err := raw.Write(hdr[:m]); err != nil {
		t.Fatal(err)
	}
	waitFaulty(t, conn, []int{1})
	if in, err := transport.ExchangeAll(conn, "x", []byte{7}); err != nil || len(in) != 1 {
		t.Fatalf("post-demotion round: msgs=%v err=%v", in, err)
	}
}

// TestReconnectRestoresLink: severing the TCP connection mid-run is a
// transient network fault — the dialing side re-dials, re-handshakes, and
// the link carries rounds again.
func TestReconnectRestoresLink(t *testing.T) {
	cfgs := newCluster(t, 2, 0)
	for i := range cfgs {
		cfgs[i].Delta = 300 * time.Millisecond
		cfgs[i].ReconnectBase = 20 * time.Millisecond
	}
	conns := dialAll(t, cfgs)

	exchangeBoth := func(stamp byte) ([2][]transport.Message, [2]error) {
		var out [2][]transport.Message
		var errs [2]error
		var wg sync.WaitGroup
		for i, c := range conns {
			wg.Add(1)
			go func(i int, c *tcpnet.Conn) {
				defer wg.Done()
				out[i], errs[i] = transport.ExchangeAll(c, "r", []byte{stamp})
			}(i, c)
		}
		wg.Wait()
		return out, errs
	}

	if in, errs := exchangeBoth(0); errs[0] != nil || errs[1] != nil || len(in[0]) != 2 || len(in[1]) != 2 {
		t.Fatalf("pre-break round failed: %v %v", in, errs)
	}
	// Party 1 is the dialer for peer 0; breaking from its side exercises
	// the active reconnect path (party 0 re-accepts passively).
	conns[1].BreakLink(0)
	time.Sleep(800 * time.Millisecond) // backoff + jitter + re-handshake

	in, errs := exchangeBoth(1)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("post-reconnect round errored: %v", errs)
	}
	for i := range conns {
		if len(in[i]) != 2 {
			t.Fatalf("party %d got %d messages after reconnect, want 2", i, len(in[i]))
		}
		if f := conns[i].Faulty(); len(f) != 0 {
			t.Fatalf("party %d demoted %v after a recoverable fault", i, f)
		}
	}
}

// TestReconnectExhaustedDemotesPeer: when the peer is truly gone (process
// down, listener closed), bounded reconnection gives up and demotes it to
// silent, so the survivor's rounds close immediately instead of burning Δ
// forever.
func TestReconnectExhaustedDemotesPeer(t *testing.T) {
	cfgs := newCluster(t, 2, 0)
	for i := range cfgs {
		cfgs[i].Delta = 200 * time.Millisecond
		cfgs[i].ReconnectAttempts = 2
		cfgs[i].ReconnectBase = 10 * time.Millisecond
	}
	conns := dialAll(t, cfgs)
	conns[0].Close() // party 0 dies, taking its listener with it
	waitFaulty(t, conns[1], []int{0})
	start := time.Now()
	in, err := transport.ExchangeAll(conns[1], "x", []byte{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 || in[0].From != 1 {
		t.Fatalf("got %v, want only self-delivery", in)
	}
	if elapsed := time.Since(start); elapsed > cfgs[1].Delta {
		t.Fatalf("round took %v with the only peer demoted", elapsed)
	}
}

// TestCloseUnblocksExchange: Close during a blocked Exchange must release
// it promptly with ErrClosed, not leave it waiting out Δ.
func TestCloseUnblocksExchange(t *testing.T) {
	cfgs := newCluster(t, 2, 0)
	for i := range cfgs {
		cfgs[i].Delta = 10 * time.Second // long enough that only Close can end the round
	}
	conns := dialAll(t, cfgs)
	errCh := make(chan error, 1)
	go func() {
		_, err := transport.ExchangeAll(conns[0], "x", []byte{1})
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the Exchange block on party 1's frame
	conns[0].Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, tcpnet.ErrClosed) {
			t.Fatalf("unblocked with %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Exchange still blocked after Close")
	}
}
