package wire

import (
	"errors"
	"fmt"
	"io"
)

// This file is the stream-framing layer shared by the TCP transport and its
// fuzz targets: one frame carries all payloads a party sends one peer in one
// synchronous round. Keeping the codec here (rather than inside tcpnet)
// makes it independently fuzzable and keeps the panic-free/fail-closed
// discipline of the message codec above it.
//
// Wire format:
//
//	uvarint  body length
//	body:
//	  uvarint  round number
//	  uvarint  payload count
//	  repeated length-prefixed payloads
//
// A frame that violates any structural bound (body over maxFrame, absurd
// payload count, trailing garbage, overlong varint) yields an error wrapping
// ErrFrame, which transports use to distinguish a *misbehaving* peer (demote
// to silent) from a *broken* connection (reconnect): I/O errors from the
// underlying reader are returned unwrapped.

// ErrFrame reports a structurally invalid frame — a protocol violation by
// the sender, as opposed to a transport-level I/O failure.
var ErrFrame = errors.New("wire: malformed frame")

// MaxFramePayloads bounds the per-frame payload count so a hostile count
// field cannot force a giant slice allocation.
const MaxFramePayloads = 1 << 20

// EncodeFrame serializes one round frame, length prefix included, into a
// single buffer so transports can ship it with one write.
func EncodeFrame(round uint64, payloads [][]byte) []byte {
	size := 16
	for _, p := range payloads {
		size += len(p) + 4
	}
	w := NewWriter(size)
	w.Uvarint(round)
	w.Uvarint(uint64(len(payloads)))
	for _, p := range payloads {
		w.Bytes(p)
	}
	body := w.Finish()
	out := NewWriter(len(body) + 4)
	out.Uvarint(uint64(len(body)))
	out.Raw(body)
	return out.Finish()
}

// ReadFrame reads one frame from r. maxFrame bounds the body size; a larger
// announced size fails with ErrFrame before any allocation. I/O errors are
// returned as-is.
func ReadFrame(r io.Reader, maxFrame uint64) (round uint64, payloads [][]byte, err error) {
	return ReadFrameGated(r, maxFrame, nil)
}

// ReadFrameGated is ReadFrame with an admission gate consulted between the
// announced length field and the body allocation: a frame the gate refuses
// costs the reader nothing but the length varint. The structural maxFrame
// bound is checked first (an absurd length is a protocol violation, not a
// budget question); gate errors — *AdmissionError wrapping ErrAdmission —
// pass through unwrapped so transports can demote with the gate's reason.
// A nil gate admits everything.
func ReadFrameGated(r io.Reader, maxFrame uint64, gate Gate) (round uint64, payloads [][]byte, err error) {
	size, err := ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if size > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrFrame, size, maxFrame)
	}
	if gate != nil {
		if err := gate.AdmitFrame(size); err != nil {
			return 0, nil, err
		}
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	rd := NewReader(body)
	round = rd.Uvarint()
	count := rd.Int()
	if rd.Err() != nil || count > MaxFramePayloads {
		return 0, nil, fmt.Errorf("%w: bad header", ErrFrame)
	}
	payloads = make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		payloads = append(payloads, rd.Bytes())
	}
	if err := rd.Close(); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrFrame, err)
	}
	return round, payloads, nil
}

// ReadUvarint reads a varint byte-by-byte from a stream. An overlong
// encoding is a protocol violation (ErrFrame); I/O errors pass through.
func ReadUvarint(r io.Reader) (uint64, error) {
	var v uint64
	var shift uint
	var buf [1]byte
	for i := 0; i < 10; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		b := buf[0]
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, fmt.Errorf("%w: overlong varint", ErrFrame)
}

// readUvarintByte is ReadUvarint over an io.ByteReader. Semantics are
// byte-for-byte identical (same 10-byte cap, same silent truncation of
// overflowing high bits, same error classification); the point is purely
// mechanical: reading through the io.Reader interface forces the 1-byte
// scratch to escape — one heap allocation and, on an unbuffered net.Conn,
// one read(2) syscall per varint byte. The borrowing decode path hands
// frames through here via a buffered reader instead.
func readUvarintByte(br io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, fmt.Errorf("%w: overlong varint", ErrFrame)
}

// readUvarintAny picks the allocation-free ByteReader path when the
// stream supports it (bytes.Reader, bufio.Reader) and falls back to the
// interface path otherwise.
func readUvarintAny(r io.Reader) (uint64, error) {
	if br, ok := r.(io.ByteReader); ok {
		return readUvarintByte(br)
	}
	return ReadUvarint(r)
}
