package rs

// Cached decode plans: the erasure-pattern-keyed fast path for
// interpolated decoding.
//
// An interpolated decode is a dense matrix product: every missing data
// column is a Lagrange combination of all k present columns. The matrix
// depends only on WHICH share indices are present — not on the payload —
// and adversarial erasure patterns repeat across stripes, instances, and
// rounds (a byzantine coalition withholds the same parties' shares every
// time). So the codec keys a small LRU cache by the present-index set and
// stores the fully expanded plan: the list of missing data columns plus
// one gf16.MulTable per matrix coefficient, ready for the word kernels.
// A cache hit turns decoding into pure streaming (gf16.DotWords per
// missing column) with no field arithmetic outside the kernels; a miss
// costs one barycentric matrix construction (~e·k scalar multiplies),
// which the old slow path paid on every call.
//
// The slow path (Codec.decodeReference) is retained verbatim as the
// reference implementation: FuzzDecodeCachedVsReference pins the two
// byte-identical on random erasure patterns, and targets without the
// vectorized kernels use it directly.

import (
	"container/list"
	"sync"

	"convexagreement/internal/gf16"
)

// Cache sizing: patterns beyond these bounds evict least-recently-used
// plans. A plan costs ~128·e·k bytes (1.3 MiB at n=256, k=171 worst
// case), so the byte bound is what actually limits large-n codecs; the
// entry bound keeps small-n caches from accumulating thousands of stale
// patterns.
const (
	planCacheMaxEntries = 64
	planCacheMaxBytes   = 64 << 20
)

// decodePlan is one erasure pattern's expanded decode matrix.
type decodePlan struct {
	// missing lists the data column indices (< k) absent from the chosen
	// shares, in increasing order; these are the columns to synthesize.
	missing []int
	// tabs holds the nibble tables for the matrix coefficients, row-major:
	// tabs[ti*k+j] multiplies chosen column j into missing column
	// missing[ti].
	tabs []gf16.MulTable
	mem  int // approximate footprint in bytes, for cache accounting
}

// planCache is a mutex-guarded LRU of decodePlans keyed by the packed
// present-index set. Lookups on the hit path do not allocate.
type planCache struct {
	mu      sync.Mutex
	byKey   map[string]*list.Element
	lru     list.List // front = most recent; values are *planEntry
	bytes   int
	maxEnts int
	maxByte int
}

type planEntry struct {
	key  string
	plan *decodePlan
}

func (pc *planCache) init() {
	pc.byKey = make(map[string]*list.Element)
	pc.lru.Init()
	pc.maxEnts = planCacheMaxEntries
	pc.maxByte = planCacheMaxBytes
}

// get returns the cached plan for key, refreshing its recency, or nil.
// The byte-slice key avoids allocating on the (dominant) hit path.
func (pc *planCache) get(key []byte) *decodePlan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byKey[string(key)] // no alloc: map lookup special case
	if !ok {
		return nil
	}
	pc.lru.MoveToFront(el)
	return el.Value.(*planEntry).plan
}

// put inserts a freshly built plan, evicting LRU entries past the bounds.
// If a concurrent builder won the race for the same key, its plan is kept
// (the plans are identical by construction).
func (pc *planCache) put(key string, p *decodePlan) *decodePlan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		pc.lru.MoveToFront(el)
		return el.Value.(*planEntry).plan
	}
	pc.byKey[key] = pc.lru.PushFront(&planEntry{key: key, plan: p})
	pc.bytes += p.mem
	for pc.lru.Len() > 1 && (pc.lru.Len() > pc.maxEnts || pc.bytes > pc.maxByte) {
		back := pc.lru.Back()
		ent := back.Value.(*planEntry)
		pc.lru.Remove(back)
		delete(pc.byKey, ent.key)
		pc.bytes -= ent.plan.mem
	}
	return p
}

// len reports the number of cached plans (tests only).
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// planFor returns the decode plan for the chosen share set, consulting the
// cache first. chosen is sorted by index and exactly k long (selectShares
// guarantees both, which is what makes the packed key canonical).
func (c *Codec) planFor(s *scratch, chosen []Share) *decodePlan {
	key := s.key[:0]
	for _, sh := range chosen {
		key = append(key, byte(sh.Index>>8), byte(sh.Index))
	}
	s.key = key
	if p := c.plans.get(key); p != nil {
		return p
	}
	return c.plans.put(string(key), c.buildPlan(chosen))
}

// buildPlan constructs the expanded decode matrix for one erasure pattern
// using the same barycentric Lagrange math as the reference path: for each
// missing data point t, row[j] = full·w_j/(x_t − x_j) with full =
// Π_m (x_t − x_m) over the chosen points. Each coefficient is then
// expanded into its nibble table once, so decodes never touch the log/exp
// tables again for this pattern.
func (c *Codec) buildPlan(chosen []Share) *decodePlan {
	k := c.k
	pts := make([]gf16.Elem, k)
	present := make([]bool, k)
	for j, sh := range chosen {
		pts[j] = point(sh.Index)
		if sh.Index < k {
			present[sh.Index] = true
		}
	}
	// Barycentric weights over the chosen points.
	w := make([]gf16.Elem, k)
	for j := 0; j < k; j++ {
		prod := gf16.Elem(1)
		for m := 0; m < k; m++ {
			if m != j {
				prod = gf16.Mul(prod, gf16.Add(pts[j], pts[m]))
			}
		}
		w[j] = gf16.Inv(prod)
	}
	p := &decodePlan{}
	row := make([]gf16.Elem, k)
	for t := 0; t < k; t++ {
		if present[t] {
			continue
		}
		tp := point(t)
		full := gf16.Elem(1)
		for m := 0; m < k; m++ {
			full = gf16.Mul(full, gf16.Add(tp, pts[m]))
		}
		for j := 0; j < k; j++ {
			row[j] = gf16.Mul(gf16.Mul(full, w[j]), gf16.Inv(gf16.Add(tp, pts[j])))
		}
		p.missing = append(p.missing, t)
		base := len(p.tabs)
		p.tabs = append(p.tabs, make([]gf16.MulTable, k)...)
		for j := 0; j < k; j++ {
			gf16.MakeMulTable(row[j], &p.tabs[base+j])
		}
	}
	p.mem = len(p.tabs)*128 + len(p.missing)*8 + 2*k
	return p
}
