package lint

import (
	"go/ast"
	"go/types"
)

// detrand: references to the process-global math/rand generator in
// protocol code. The replay discipline (faultnet seeds, checkpoint
// resume, dual-run transcript digests) requires every random draw to
// come from an explicitly seeded *rand.Rand threaded through the call —
// the top-level rand.Intn/Shuffle/... helpers share one global source
// whose state depends on everything else in the process, so two
// identically-seeded runs diverge. Constructors (rand.New,
// rand.NewSource, ...) are fine: they are how the discipline is
// implemented.
var detrandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc:  "global math/rand use bypasses the seeded *rand.Rand replay discipline",
	Run:  runDetrand,
}

// detrandAllowed are the math/rand package-level functions that do not
// touch the global source.
var detrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDetrand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			path := funcPkgPath(fn)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // *rand.Rand methods are the sanctioned path
			}
			if detrandAllowed[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "%s.%s draws from the process-global RNG; seed a *rand.Rand and thread it through so replays stay byte-exact", path, fn.Name())
			return true
		})
	}
}
