package convexagreement_test

import (
	"math/big"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	ca "convexagreement"
)

func ints(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

func TestAgreeDefaults(t *testing.T) {
	res, err := ca.Agree(ints(10, 20, 30, 40), ca.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil || !ca.InHull(res.Output, ints(10, 20, 30, 40)) {
		t.Fatalf("output %v outside hull", res.Output)
	}
	if len(res.Outputs) != 4 {
		t.Errorf("%d outputs", len(res.Outputs))
	}
	if res.Rounds == 0 || res.HonestBits == 0 || len(res.BitsByLabel) == 0 {
		t.Error("cost report incomplete")
	}
}

func TestAgreeAllProtocols(t *testing.T) {
	for _, proto := range ca.Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			opts := ca.Options{Protocol: proto}
			if proto.NeedsWidth() {
				opts.Width = 7 * 7 // n = 7 → n² = 49, valid for both fixed variants
			}
			inputs := ints(100, 120, 101, 130, 99, 115, 107)
			res, err := ca.Agree(inputs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !ca.InHull(res.Output, inputs) {
				t.Fatalf("output %v outside hull", res.Output)
			}
		})
	}
}

func TestAgreeWithAllAdversaryKinds(t *testing.T) {
	for _, kind := range ca.AdversaryKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			inputs := ints(50, 55, 60, 52, 58, 54, 51)
			honest := []*big.Int{}
			corr := map[int]ca.Corruption{
				2: {Kind: kind, Input: big.NewInt(1 << 40)},
				5: {Kind: kind, Input: big.NewInt(-1 << 40)},
			}
			for i, v := range inputs {
				if _, bad := corr[i]; !bad {
					honest = append(honest, v)
				}
			}
			res, err := ca.Agree(inputs, ca.Options{Corruptions: corr, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if !ca.InHull(res.Output, honest) {
				t.Fatalf("output %v escaped honest hull under %s", res.Output, kind)
			}
		})
	}
}

func TestAgreeOptionValidation(t *testing.T) {
	cases := []struct {
		name   string
		inputs []*big.Int
		opts   ca.Options
	}{
		{"no-inputs", nil, ca.Options{}},
		{"bad-t", ints(1, 2, 3), ca.Options{T: 1}},
		{"too-many-corruptions", ints(1, 2, 3, 4), ca.Options{Corruptions: map[int]ca.Corruption{0: {Kind: ca.AdvSilent}, 1: {Kind: ca.AdvSilent}}}},
		{"corruption-out-of-range", ints(1, 2, 3, 4), ca.Options{Corruptions: map[int]ca.Corruption{9: {Kind: ca.AdvSilent}}}},
		{"nil-input", []*big.Int{big.NewInt(1), nil, big.NewInt(2), big.NewInt(3)}, ca.Options{}},
		{"negative-for-nat", ints(-1, 2, 3, 4), ca.Options{Protocol: ca.ProtoOptimalNat}},
		{"missing-width", ints(1, 2, 3, 4), ca.Options{Protocol: ca.ProtoFixedLength}},
		{"unknown-protocol", ints(1, 2, 3, 4), ca.Options{Protocol: "nope"}},
		{"ghost-without-input", ints(1, 2, 3, 4), ca.Options{Corruptions: map[int]ca.Corruption{0: {Kind: ca.AdvGhost}}}},
		{"unknown-adversary", ints(1, 2, 3, 4), ca.Options{Corruptions: map[int]ca.Corruption{0: {Kind: "nope"}}}},
	}
	for _, tc := range cases {
		if _, err := ca.Agree(tc.inputs, tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestAgreePropertyRandomized(t *testing.T) {
	// testing/quick over the full public surface: random sizes, inputs,
	// adversary kinds and placements; Agreement + Convex Validity always.
	kinds := ca.AdversaryKinds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)
		tc := (n - 1) / 3
		inputs := make([]*big.Int, n)
		for i := range inputs {
			inputs[i] = big.NewInt(int64(rng.Intn(1<<30)) - (1 << 29))
		}
		corr := map[int]ca.Corruption{}
		for len(corr) < rng.Intn(tc+1) {
			corr[rng.Intn(n)] = ca.Corruption{
				Kind:  kinds[rng.Intn(len(kinds))],
				Input: big.NewInt(int64(rng.Uint32()) - (1 << 31)),
			}
		}
		var honest []*big.Int
		for i, v := range inputs {
			if _, bad := corr[i]; !bad {
				honest = append(honest, v)
			}
		}
		res, err := ca.Agree(inputs, ca.Options{Corruptions: corr, Seed: seed})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return ca.InHull(res.Output, honest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHullHelpers(t *testing.T) {
	lo, hi, err := ca.Hull(ints(5, -3, 9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Int64() != -3 || hi.Int64() != 9 {
		t.Errorf("hull = [%v, %v]", lo, hi)
	}
	if _, _, err := ca.Hull(nil); err == nil {
		t.Error("empty hull accepted")
	}
	if _, _, err := ca.Hull([]*big.Int{nil}); err == nil {
		t.Error("nil value accepted")
	}
	if !ca.InHull(big.NewInt(0), ints(-1, 1)) || ca.InHull(big.NewInt(2), ints(-1, 1)) {
		t.Error("InHull wrong")
	}
	if ca.InHull(nil, ints(1)) {
		t.Error("nil value in hull")
	}
}

func TestRunPartyOverTCP(t *testing.T) {
	n := 4
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	inputs := ints(7, -2, 4, 9)
	outputs := make([]*big.Int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := ca.DialTCP(ca.TCPConfig{
				ID: i, Addrs: addrs, Delta: 3 * time.Second, Listener: listeners[i],
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer tr.Close()
			outputs[i], errs[i] = ca.RunParty(tr, ca.ProtoOptimal, 0, inputs[i])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("party %d: %v", i, errs[i])
		}
	}
	for i := 1; i < n; i++ {
		if outputs[i].Cmp(outputs[0]) != 0 {
			t.Fatalf("disagreement: %v vs %v", outputs[i], outputs[0])
		}
	}
	if !ca.InHull(outputs[0], inputs) {
		t.Fatalf("output %v outside hull", outputs[0])
	}
}

func TestRunPartyValidation(t *testing.T) {
	if _, err := ca.RunParty(nil, ca.ProtoOptimal, 0, nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := ca.RunParty(nil, ca.ProtoOptimalNat, 0, big.NewInt(-1)); err == nil {
		t.Error("negative nat accepted")
	}
	if _, err := ca.RunParty(nil, ca.ProtoFixedLength, 0, big.NewInt(1)); err == nil {
		t.Error("missing width accepted")
	}
}

func TestProtocolMetadata(t *testing.T) {
	if !ca.ProtoOptimal.AcceptsNegative() || ca.ProtoHighCost.AcceptsNegative() {
		t.Error("AcceptsNegative wrong")
	}
	if !ca.ProtoFixedLength.NeedsWidth() || ca.ProtoOptimal.NeedsWidth() {
		t.Error("NeedsWidth wrong")
	}
	if len(ca.Protocols()) < 6 || len(ca.AdversaryKinds()) < 7 {
		t.Error("catalogs incomplete")
	}
}
