// Command catcp runs ONE party of a Convex Agreement cluster over real TCP
// — one process per party, on one machine or many. All parties must be
// started with the same -addrs list (and the same protocol flags) within
// the dial timeout.
//
// A three-party cluster on localhost:
//
//	catcp -id 0 -addrs :7000,:7001,:7002 -input -1005 &
//	catcp -id 1 -addrs :7000,:7001,:7002 -input -1003 &
//	catcp -id 2 -addrs :7000,:7001,:7002 -input -1004
//
// Every process prints the same agreed value, guaranteed to lie within the
// range of the inputs of the correctly running parties.
//
// With -supervised -statedir DIR the party checkpoints every round to a
// write-ahead log in DIR and runs under a stall-detecting supervisor: if the
// process is restarted (or the supervisor restarts a stalled attempt), it
// resumes from the log, redials the mesh announcing its resume round, and
// peers replay the missed rounds from their buffered outbox tails. -instances
// runs a session of several agreement instances (inputs offset by instance
// number) instead of a single one. -mirror keeps two WAL copies with voting
// repair, surviving single-copy bit rot.
//
// Storage is validated before the mesh is dialed: a missing/unwritable
// state directory, an unrecoverable WAL, or state recorded for a different
// (n, t) geometry exits immediately with code 5. Storage that degrades
// MID-run does not kill the party — it keeps participating with
// checkpointing disabled (liveness preserved, crash recovery forfeited)
// and the condition is reported in the supervisor health line.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/big"
	"os"
	"strings"
	"time"

	ca "convexagreement"
	"convexagreement/internal/supervisor"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id         = flag.Int("id", -1, "this party's index into -addrs")
		addrsFlag  = flag.String("addrs", "", "comma-separated listen addresses of ALL parties, in party order")
		t          = flag.Int("t", 0, "corruption budget (default ⌊(n−1)/3⌋)")
		protoName  = flag.String("protocol", string(ca.ProtoOptimal), "protocol: optimal | optimal-nat | fixed-length | fixed-length-blocks | highcost | broadcast")
		width      = flag.Int("width", 0, "public input bit width (fixed-length protocols)")
		inputStr   = flag.String("input", "", "this party's integer input (decimal)")
		delta      = flag.Duration("delta", 2*time.Second, "synchrony bound Δ per round")
		dialTO     = flag.Duration("dial-timeout", 15*time.Second, "time to wait for the full mesh")
		supervised = flag.Bool("supervised", false, "checkpoint every round and restart from the log on stall or error (requires -statedir)")
		stateDir   = flag.String("statedir", "", "directory for the write-ahead log (supervised mode)")
		mirror     = flag.Bool("mirror", false, "supervised mode: keep a dual-copy write-ahead log; single-copy damage (bit rot included) is voted out and repaired")
		instances  = flag.Int("instances", 1, "number of sequential agreement instances in the session")
		restarts   = flag.Int("max-restarts", 3, "supervised mode: restart budget before giving up")
		stallR     = flag.Int("stall-rounds", 8, "supervised mode: rounds of no progress before an attempt is declared stalled")
	)
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 1 {
		fmt.Fprintln(os.Stderr, "catcp: -addrs is required")
		return 2
	}
	if *id < 0 || *id >= len(addrs) {
		fmt.Fprintf(os.Stderr, "catcp: -id must be in [0, %d)\n", len(addrs))
		return 2
	}
	input, ok := new(big.Int).SetString(strings.TrimSpace(*inputStr), 10)
	if !ok {
		fmt.Fprintf(os.Stderr, "catcp: invalid -input %q\n", *inputStr)
		return 2
	}
	if *instances < 1 {
		fmt.Fprintln(os.Stderr, "catcp: -instances must be ≥ 1")
		return 2
	}
	if *supervised && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "catcp: -supervised requires -statedir")
		return 2
	}

	if !*supervised && *mirror {
		fmt.Fprintln(os.Stderr, "catcp: -mirror requires -supervised")
		return 2
	}
	if *supervised {
		return runSupervised(*id, addrs, *t, *protoName, *width, input,
			*delta, *dialTO, *stateDir, *instances, *restarts, *stallR, *mirror)
	}

	fmt.Fprintf(os.Stderr, "catcp: party %d/%d listening on %s, dialing mesh...\n", *id, len(addrs), addrs[*id])
	start := time.Now()
	tr, err := ca.DialTCP(ca.TCPConfig{
		ID:          *id,
		Addrs:       addrs,
		T:           *t,
		Delta:       *delta,
		DialTimeout: *dialTO,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "catcp: mesh:", err)
		return 1
	}
	defer tr.Close()
	fmt.Fprintf(os.Stderr, "catcp: mesh up in %v, running %s...\n", time.Since(start).Round(time.Millisecond), *protoName)

	s := ca.NewSession(tr)
	var out *big.Int
	for seq := 0; seq < *instances; seq++ {
		out, err = s.Agree(ca.Protocol(*protoName), *width, instanceInput(input, seq))
		if err != nil {
			fmt.Fprintln(os.Stderr, "catcp: protocol:", err)
			return 1
		}
		fmt.Println(out) // the agreed value on stdout, scripting-friendly
	}
	fmt.Fprintf(os.Stderr, "catcp: done in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// instanceInput offsets the base input per instance so a multi-instance
// session exercises distinct hulls while staying scriptable from one flag.
func instanceInput(base *big.Int, seq int) *big.Int {
	return new(big.Int).Add(base, big.NewInt(int64(1000*seq)))
}

// runSupervised runs the checkpointed, supervised session: every attempt
// inspects the write-ahead log, redials the mesh announcing the resume
// round, and replays the log before touching the live network.
func runSupervised(id int, addrs []string, t int, protoName string, width int,
	input *big.Int, delta, dialTO time.Duration,
	stateDir string, instances, restarts, stallRounds int, mirror bool) int {
	start := time.Now()
	storage := ca.StorageOptions{Mirror: mirror}

	// Fail fast on an unusable state directory BEFORE dialing the mesh:
	// missing and uncreatable, unwritable, corrupt beyond recovery, or
	// holding a different mesh's (n, t) state all end here with a typed
	// error — not three restart attempts deep with peers already counting
	// this party as live.
	if _, err := ca.ValidateStateDir(stateDir, len(addrs), t, storage); err != nil {
		fmt.Fprintf(os.Stderr, "catcp: state directory rejected: %v\n", err)
		return 5
	}

	outs := make([]*big.Int, instances)
	health, err := supervisor.Run(supervisor.Config{
		Delta:       delta,
		StallRounds: stallRounds,
		MaxRestarts: restarts,
		N:           len(addrs),
		T:           t,
	}, func(a *supervisor.Attempt) error {
		st, err := ca.InspectStateOpts(stateDir, storage)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "catcp: attempt %d: resuming at instance %d round %d, dialing mesh...\n",
			a.Number, st.Seq, st.NextRound)
		tr, err := ca.DialTCP(ca.TCPConfig{
			ID:          id,
			Addrs:       addrs,
			T:           t,
			Delta:       delta,
			DialTimeout: dialTO,
			ResumeRound: st.NextRound,
		})
		if err != nil {
			return err
		}
		defer tr.Close()
		a.AbortOnStall(func() { tr.Close() })
		s := ca.NewSession(tr)
		if err := s.ResumeOpts(stateDir, storage); err != nil {
			return err
		}
		defer s.Close()
		a.Progress(s.Rounds)
		a.ReportStorage(s.StorageErr()) // mirrored open may already be degraded
		if gap := tr.FrontierGap(); gap > 0 {
			fmt.Fprintf(os.Stderr, "catcp: rejoined a mesh %d rounds ahead\n", gap)
		}
		storageNoted := s.StorageErr() != nil
		for seq := s.Seq(); seq < uint64(instances); seq++ {
			a.ReportPeers(len(addrs) - len(tr.Faulty()))
			a.ReportDemotions(tr.Demotions())
			out, err := s.Agree(ca.Protocol(protoName), width, instanceInput(input, int(seq)))
			if serr := s.StorageErr(); serr != nil {
				// Degrade-and-continue: the party stays in the mesh with
				// checkpointing impaired or disabled. Liveness is preserved;
				// a crash from here on cannot be resumed.
				a.ReportStorage(serr)
				if !storageNoted {
					storageNoted = true
					fmt.Fprintf(os.Stderr, "catcp: storage degraded, continuing without recovery: %v\n", serr)
				}
			}
			if err != nil {
				return err
			}
			outs[seq] = out
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "catcp: supervised session failed: %v\n", err)
		fmt.Fprintf(os.Stderr, "catcp: health: %s\n", health)
		switch {
		case errors.Is(err, supervisor.ErrQuorumLost):
			return 3
		case errors.Is(err, supervisor.ErrStalled), errors.Is(err, supervisor.ErrRestartsExhausted):
			return 4
		case errors.Is(err, supervisor.ErrStorageLost):
			return 5
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "catcp: done in %v (%d attempts)\n",
		time.Since(start).Round(time.Millisecond), health.Attempts)
	for _, out := range outs {
		fmt.Println(out)
	}
	return 0
}
