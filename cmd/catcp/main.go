// Command catcp runs ONE party of a Convex Agreement cluster over real TCP
// — one process per party, on one machine or many. All parties must be
// started with the same -addrs list (and the same protocol flags) within
// the dial timeout.
//
// A three-party cluster on localhost:
//
//	catcp -id 0 -addrs :7000,:7001,:7002 -input -1005 &
//	catcp -id 1 -addrs :7000,:7001,:7002 -input -1003 &
//	catcp -id 2 -addrs :7000,:7001,:7002 -input -1004
//
// Every process prints the same agreed value, guaranteed to lie within the
// range of the inputs of the correctly running parties.
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"strings"
	"time"

	ca "convexagreement"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id        = flag.Int("id", -1, "this party's index into -addrs")
		addrsFlag = flag.String("addrs", "", "comma-separated listen addresses of ALL parties, in party order")
		t         = flag.Int("t", 0, "corruption budget (default ⌊(n−1)/3⌋)")
		protoName = flag.String("protocol", string(ca.ProtoOptimal), "protocol: optimal | optimal-nat | fixed-length | fixed-length-blocks | highcost | broadcast")
		width     = flag.Int("width", 0, "public input bit width (fixed-length protocols)")
		inputStr  = flag.String("input", "", "this party's integer input (decimal)")
		delta     = flag.Duration("delta", 2*time.Second, "synchrony bound Δ per round")
		dialTO    = flag.Duration("dial-timeout", 15*time.Second, "time to wait for the full mesh")
	)
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 1 {
		fmt.Fprintln(os.Stderr, "catcp: -addrs is required")
		return 2
	}
	if *id < 0 || *id >= len(addrs) {
		fmt.Fprintf(os.Stderr, "catcp: -id must be in [0, %d)\n", len(addrs))
		return 2
	}
	input, ok := new(big.Int).SetString(strings.TrimSpace(*inputStr), 10)
	if !ok {
		fmt.Fprintf(os.Stderr, "catcp: invalid -input %q\n", *inputStr)
		return 2
	}

	fmt.Fprintf(os.Stderr, "catcp: party %d/%d listening on %s, dialing mesh...\n", *id, len(addrs), addrs[*id])
	start := time.Now()
	tr, err := ca.DialTCP(ca.TCPConfig{
		ID:          *id,
		Addrs:       addrs,
		T:           *t,
		Delta:       *delta,
		DialTimeout: *dialTO,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "catcp: mesh:", err)
		return 1
	}
	defer tr.Close()
	fmt.Fprintf(os.Stderr, "catcp: mesh up in %v, running %s...\n", time.Since(start).Round(time.Millisecond), *protoName)

	out, err := ca.RunParty(tr, ca.Protocol(*protoName), *width, input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catcp: protocol:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "catcp: done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(out) // the agreed value on stdout, scripting-friendly
	return 0
}
