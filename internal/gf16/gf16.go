// Package gf16 implements arithmetic in the Galois field GF(2^16).
//
// The paper's Π_ℓBA+ protocol (Section 7) assumes Reed-Solomon codes whose
// symbols live in a field GF(2^a) with n ≤ 2^a − 1 parties. GF(2^16)
// supports up to 65535 parties, far beyond any simulation here, while
// keeping symbols a convenient two bytes.
//
// The field is realized as GF(2)[x] / (x^16 + x^12 + x^3 + x + 1), the
// primitive polynomial used by e.g. the PAR2 specification; x (= 0x0002) is
// a primitive element, so multiplication is table-driven via discrete
// logarithms.
package gf16

// Elem is an element of GF(2^16).
type Elem uint16

// Order is the multiplicative order of the field's unit group.
const Order = 1<<16 - 1

// reducingPoly is x^16 + x^12 + x^3 + x + 1 without the leading x^16 term,
// i.e. the feedback mask applied when a carry leaves the top bit.
const reducingPoly = 0x100B

// expMask sizes the exponent table to a power of two: every valid index
// (≤ 2·Order − 2) is below 1<<17, so `idx & expMask` is semantically a
// no-op that lets the compiler drop the bounds check in the slice kernels'
// innermost loops.
const expMask = 1<<17 - 1

// The log/exp tables are fixed-size arrays built once at package init, so
// no hot path — in particular the slice kernels, which sit in the innermost
// loops of the Reed-Solomon codec — ever pays a sync.Once check or a slice
// indirection. Building costs ~65k shift-and-reduce multiplications (well
// under a millisecond of startup).
var (
	expTable [expMask + 1]Elem // exp[i] = x^i, doubled so products avoid a modulo
	logTable [1 << 16]uint32
)

func init() {
	v := Elem(1)
	for i := 0; i < Order; i++ {
		expTable[i] = v
		expTable[i+Order] = v
		logTable[v] = uint32(i)
		v = mulNoTable(v, 2)
	}
}

// mulNoTable multiplies by shift-and-reduce; used only to build the tables
// and in tests as an independent reference implementation.
func mulNoTable(a, b Elem) Elem {
	var acc uint32
	av, bv := uint32(a), uint32(b)
	for bv != 0 {
		if bv&1 == 1 {
			acc ^= av
		}
		av <<= 1
		if av&0x10000 != 0 {
			av ^= 0x10000 | reducingPoly
		}
		bv >>= 1
	}
	return Elem(acc)
}

// Add returns a + b (= a − b) in GF(2^16).
func Add(a, b Elem) Elem { return a ^ b }

// Mul returns a·b in GF(2^16).
func Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// Inv returns the multiplicative inverse of a. Inv(0) is undefined and
// returns 0; callers must not divide by zero (guarded at call sites).
func Inv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return expTable[Order-logTable[a]]
}

// Div returns a / b. Division by zero returns 0 (callers guard against it).
func Div(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	l := logTable[a] + Order - logTable[b]
	return expTable[l%Order]
}

// Pow returns a^k for k ≥ 0, with a^0 = 1 (including 0^0 = 1).
func Pow(a Elem, k int) Elem {
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (uint64(logTable[a]) * uint64(k)) % Order
	return expTable[l]
}

// MulNoTable exposes the reference multiplier for cross-checking in tests.
func MulNoTable(a, b Elem) Elem { return mulNoTable(a, b) }
