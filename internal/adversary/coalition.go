package adversary

import (
	"sort"
	"sync"

	"convexagreement/internal/sim"
)

// Coalition builds a set of corrupted behaviors that share state and act as
// one coordinated attacker — strictly stronger than independent strategies:
// all members relay the SAME pair of conflicting honest payloads, split
// across the same partition of recipients, every round. Against quorum
// protocols this maximizes the chance that different honest parties see
// contradictory-but-internally-consistent worlds.
//
// The returned behaviors must all be used in the same run.
type Coalition struct {
	mu   sync.Mutex
	plan map[uint64]coalitionPlan // per shared round counter
	seen map[sim.PartyID]uint64   // per-member round counter
}

type coalitionPlan struct {
	low, high []byte // the two payloads members push this round
}

// NewCoalition creates the shared state for one run.
func NewCoalition() *Coalition {
	return &Coalition{plan: make(map[uint64]coalitionPlan), seen: make(map[sim.PartyID]uint64)}
}

// Member returns one coalition member's behavior.
func (c *Coalition) Member() sim.Behavior {
	return func(env *sim.Env) error {
		for {
			spied, err := env.PeekHonest()
			if err != nil {
				return err
			}
			round := c.nextRound(env.ID())
			plan := c.planFor(round, spied)
			var out []sim.Packet
			if plan.low != nil {
				for to := 0; to < env.N(); to++ {
					payload := plan.low
					if to%2 == 1 {
						payload = plan.high
					}
					out = append(out, sim.Packet{To: sim.PartyID(to), Tag: tag, Payload: payload})
				}
			}
			if _, err := env.Exchange(out); err != nil {
				return err
			}
		}
	}
}

// nextRound advances this member's round counter.
func (c *Coalition) nextRound(id sim.PartyID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[id]++
	return c.seen[id]
}

// planFor computes (once per round, shared by all members) the two extreme
// honest payloads of the round: the lexicographically smallest and largest.
// Pushing the extremes maximizes disagreement pressure on value protocols.
func (c *Coalition) planFor(round uint64, spied []sim.Spied) coalitionPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if plan, ok := c.plan[round]; ok {
		return plan
	}
	byFrom := make(map[sim.PartyID][]byte)
	for _, s := range spied {
		if _, ok := byFrom[s.From]; !ok {
			byFrom[s.From] = s.Payload
		}
	}
	payloads := make([]string, 0, len(byFrom))
	for _, p := range byFrom {
		payloads = append(payloads, string(p))
	}
	sort.Strings(payloads)
	var plan coalitionPlan
	if len(payloads) > 0 {
		plan.low = []byte(payloads[0])
		plan.high = []byte(payloads[len(payloads)-1])
	}
	c.plan[round] = plan
	return plan
}
