package mux_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"convexagreement/internal/mux"
	"convexagreement/internal/transport"
)

// recNet records the flattened packets each physical round hands it and
// replays a canned inbox — the copying-path observer.
type recNet struct {
	n    int
	in   []transport.Message
	sent [][]byte
}

func (s *recNet) ID() transport.PartyID { return 1 }
func (s *recNet) N() int                { return s.n }
func (s *recNet) T() int                { return 1 }
func (s *recNet) Exchange(out []transport.Packet) ([]transport.Message, error) {
	for _, p := range out {
		s.sent = append(s.sent, append([]byte(nil), p.Payload...))
	}
	return s.in, nil
}

// recVecNet is recNet for the scatter-gather path: it flattens each
// VecPacket at delivery time, before ExchangeVec returns, as the VecNet
// ownership contract requires of a retaining transport.
type recVecNet struct {
	recNet
}

func (s *recVecNet) ExchangeVec(out []transport.VecPacket) ([]transport.Message, error) {
	for _, p := range out {
		s.sent = append(s.sent, transport.FlattenVec(p.Vec))
	}
	return s.in, nil
}

var _ transport.VecNet = (*recVecNet)(nil)

// driveRounds pushes a k-instance mux through the given per-round packet
// batches (every instance sends the same batch each round).
func driveRounds(t *testing.T, m *mux.Mux, k, rounds int, batch func(inst, round int) []transport.Packet) {
	t.Helper()
	done := make(chan error, k)
	for inst := 0; inst < k; inst++ {
		go func(inst int) {
			net := m.Net(inst)
			for r := 0; r < rounds; r++ {
				if _, err := net.Exchange(batch(inst, r)); err != nil {
					done <- fmt.Errorf("instance %d round %d: %w", inst, r, err)
					return
				}
			}
			done <- nil
		}(inst)
	}
	for i := 0; i < k; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestVecPathMatchesCopyPath runs identical muxes over a plain base and a
// vec base and asserts the bases observe byte-identical physical packet
// streams — the zero-copy merge is a pure transport optimization, not a
// semantic change. It also pins the Stats split: all payload bytes
// referenced on the vec path, all copied on the plain path.
func TestVecPathMatchesCopyPath(t *testing.T) {
	const k, rounds = 3, 4
	batch := func(inst, round int) []transport.Packet {
		var out []transport.Packet
		for to := 0; to < 4; to++ {
			out = append(out, transport.Packet{
				To:      transport.PartyID(to),
				Tag:     "t",
				Payload: bytes.Repeat([]byte{byte(inst<<4 | round)}, 32+inst),
			})
		}
		// One empty payload per instance: the vec path must frame it too.
		return append(out, transport.Packet{To: 0, Tag: "t"})
	}

	plain := &recNet{n: 4}
	mPlain, err := mux.New(plain, k)
	if err != nil {
		t.Fatal(err)
	}
	driveRounds(t, mPlain, k, rounds, batch)

	vec := &recVecNet{recNet{n: 4}}
	mVec, err := mux.New(vec, k)
	if err != nil {
		t.Fatal(err)
	}
	driveRounds(t, mVec, k, rounds, batch)

	if !reflect.DeepEqual(plain.sent, vec.sent) {
		t.Fatalf("physical streams diverge:\ncopy: %x\nvec:  %x", plain.sent, vec.sent)
	}

	ps, vs := mPlain.Stats(), mVec.Stats()
	if ps.Rounds != rounds || vs.Rounds != rounds {
		t.Fatalf("Rounds = %d/%d, want %d", ps.Rounds, vs.Rounds, rounds)
	}
	if ps.Packets != vs.Packets || ps.Packets == 0 {
		t.Fatalf("Packets = %d/%d, want equal and nonzero", ps.Packets, vs.Packets)
	}
	if ps.BytesCopied == 0 || ps.BytesReferenced != 0 {
		t.Fatalf("copy-path stats: copied=%d referenced=%d", ps.BytesCopied, ps.BytesReferenced)
	}
	if vs.BytesCopied != 0 || vs.BytesReferenced != ps.BytesCopied {
		t.Fatalf("vec-path stats: copied=%d referenced=%d (want 0, %d)", vs.BytesCopied, vs.BytesReferenced, ps.BytesCopied)
	}
}

// TestVecScratchDoesNotAliasAcrossRounds: the vec path reuses its header
// scratch across physical rounds, which is only sound because ExchangeVec
// frees the pieces on return. A base that (incorrectly) retained the
// pieces would observe round r's headers rewritten during round r+1; this
// test retains them deliberately and checks the flattened copies taken at
// delivery time stay intact instead.
func TestVecScratchDoesNotAliasAcrossRounds(t *testing.T) {
	vec := &recVecNet{recNet{n: 2}}
	m, err := mux.New(vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("stable")
	driveRounds(t, m, 1, 3, func(inst, round int) []transport.Packet {
		return []transport.Packet{{To: 0, Tag: "t", Payload: payload}}
	})
	for i, sent := range vec.sent {
		if string(sent[1:]) != "stable" {
			t.Fatalf("round %d frame corrupted across scratch reuse: %x", i, sent)
		}
	}
}

// benchInbox fabricates a full honest inbox so the demux side runs too.
func benchInbox(n, k, size int) []transport.Message {
	var in []transport.Message
	body := bytes.Repeat([]byte{0x42}, size)
	for s := 0; s < n; s++ {
		for inst := 0; inst < k; inst++ {
			in = append(in, transport.Message{From: transport.PartyID(s), Payload: frame(inst, string(body))})
		}
	}
	return in
}

func benchMux(b *testing.B, base transport.Net, k, n, size int) {
	m, err := mux.New(base, k)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, size)
	batch := make([]transport.Packet, n)
	for to := range batch {
		batch[to] = transport.Packet{To: transport.PartyID(to), Tag: "b", Payload: payload}
	}
	nets := make([]transport.Net, k)
	for i := range nets {
		nets[i] = m.Net(i)
	}
	b.ReportAllocs()
	b.SetBytes(int64(k * n * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, k)
		for _, net := range nets {
			go func(net transport.Net) {
				_, err := net.Exchange(batch)
				done <- err
			}(net)
		}
		for j := 0; j < k; j++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMuxFlushCopy vs BenchmarkMuxFlushVec: one physical round of 16
// instances broadcasting 1 KiB to 16 parties, over a plain base (bump
// buffer copies every payload) and a vec base (payloads by reference).
// The B/op gap is the bump buffer; ci.sh pins the vec path with
// -guard-allocs.
func BenchmarkMuxFlushCopy(b *testing.B) {
	benchMux(b, &recBenchNet{n: 16, in: benchInbox(16, 16, 1024)}, 16, 16, 1024)
}

func BenchmarkMuxFlushVec(b *testing.B) {
	benchMux(b, &recBenchVecNet{recBenchNet{n: 16, in: benchInbox(16, 16, 1024)}}, 16, 16, 1024)
}

// recBenchNet is recNet without the sent-recording (recording would
// dominate the benchmark).
type recBenchNet struct {
	n  int
	in []transport.Message
}

func (s *recBenchNet) ID() transport.PartyID { return 1 }
func (s *recBenchNet) N() int                { return s.n }
func (s *recBenchNet) T() int                { return 1 }
func (s *recBenchNet) Exchange(out []transport.Packet) ([]transport.Message, error) {
	return s.in, nil
}

type recBenchVecNet struct {
	recBenchNet
}

func (s *recBenchVecNet) ExchangeVec(out []transport.VecPacket) ([]transport.Message, error) {
	return s.in, nil
}
