package asyncnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// honest wraps a behavior as an honest Party.
func honest(b Behavior) Party { return Party{Behavior: b} }

func TestAllMessagesEventuallyDelivered(t *testing.T) {
	// Every party sends one message to every other and receives n-1.
	const n = 5
	var mu sync.Mutex
	got := make(map[PartyID][]PartyID)
	parties := make([]Party, n)
	for i := 0; i < n; i++ {
		parties[i] = honest(func(net *Net, id PartyID) error {
			for to := 0; to < n; to++ {
				if PartyID(to) != id {
					net.Send(id, PartyID(to), []byte{byte(id)})
				}
			}
			for k := 0; k < n-1; k++ {
				msg, err := net.Recv(id)
				if err != nil {
					return err
				}
				if len(msg.Payload) != 1 || PartyID(msg.Payload[0]) != msg.From {
					return fmt.Errorf("spoofed or corrupt message %v", msg)
				}
				mu.Lock()
				got[id] = append(got[id], msg.From)
				mu.Unlock()
			}
			return nil
		})
	}
	if _, err := Run(Config{N: n, T: 1, Seed: 42}, parties); err != nil {
		t.Fatal(err)
	}
	for id, froms := range got {
		if len(froms) != n-1 {
			t.Errorf("party %d got %d messages", id, len(froms))
		}
	}
}

func TestSchedulersProduceDifferentButCompleteOrders(t *testing.T) {
	const n = 4
	run := func(s Scheduler) []PartyID {
		var order []PartyID
		var mu sync.Mutex
		parties := make([]Party, n)
		// Party 0 receives 3 messages from the others.
		parties[0] = honest(func(net *Net, id PartyID) error {
			for k := 0; k < 3; k++ {
				msg, err := net.Recv(id)
				if err != nil {
					return err
				}
				mu.Lock()
				order = append(order, msg.From)
				mu.Unlock()
			}
			return nil
		})
		for i := 1; i < n; i++ {
			parties[i] = honest(func(net *Net, id PartyID) error {
				net.Send(id, 0, []byte{byte(id)})
				return nil
			})
		}
		if _, err := Run(Config{N: n, T: 1, Scheduler: s}, parties); err != nil {
			t.Fatal(err)
		}
		return order
	}
	for _, s := range []Scheduler{NewRandomScheduler(7), NewDelayScheduler(7, 1), LIFOScheduler{}} {
		order := run(s)
		if len(order) != 3 {
			t.Fatalf("%T: %d deliveries", s, len(order))
		}
	}
	// The delay scheduler must deliver the victim's message last.
	order := run(NewDelayScheduler(1, 1))
	if order[2] != 1 {
		t.Errorf("delay scheduler delivered victim at position %v", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	parties := []Party{honest(func(net *Net, id PartyID) error {
		_, err := net.Recv(id) // nobody will ever send
		return err
	})}
	_, err := Run(Config{N: 1, T: 0}, parties)
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestDeliveryBudget(t *testing.T) {
	// Two parties ping-pong forever; the budget must stop the run.
	parties := make([]Party, 2)
	for i := 0; i < 2; i++ {
		parties[i] = honest(func(net *Net, id PartyID) error {
			if id == 0 {
				net.Send(0, 1, []byte{0})
			}
			for {
				msg, err := net.Recv(id)
				if err != nil {
					return err
				}
				net.Send(id, msg.From, msg.Payload)
			}
		})
	}
	_, err := Run(Config{N: 2, T: 0, MaxDeliveries: 100}, parties)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want budget", err)
	}
}

func TestFinishedPartyStopsReceiving(t *testing.T) {
	// Party 1 exits immediately; party 0's sends to it must not wedge the
	// run, and party 0 can still finish.
	parties := []Party{
		honest(func(net *Net, id PartyID) error {
			net.Send(id, 1, []byte{1})
			net.Send(id, 0, []byte{2}) // self message keeps us receivable
			_, err := net.Recv(id)
			return err
		}),
		honest(func(net *Net, id PartyID) error { return nil }),
	}
	if _, err := Run(Config{N: 2, T: 0}, parties); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptLoopReleasedWhenHonestFinish(t *testing.T) {
	// The corrupt party receives forever; once the honest party finishes,
	// it must be released with ErrHalted and the run must succeed.
	var corruptErr error
	parties := []Party{
		honest(func(net *Net, id PartyID) error {
			net.Send(id, 0, []byte{7})
			_, err := net.Recv(id)
			return err
		}),
		{Corrupt: true, Behavior: func(net *Net, id PartyID) error {
			for {
				if _, err := net.Recv(id); err != nil {
					corruptErr = err
					return err
				}
			}
		}},
	}
	if _, err := Run(Config{N: 2, T: 1}, parties); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(corruptErr, ErrHalted) {
		t.Errorf("corrupt exit = %v, want ErrHalted", corruptErr)
	}
}

func TestPanicContained(t *testing.T) {
	parties := []Party{
		honest(func(net *Net, id PartyID) error { panic("boom") }),
		honest(func(net *Net, id PartyID) error {
			net.Send(id, id, []byte{1})
			_, err := net.Recv(id)
			return err
		}),
	}
	errs, err := Run(Config{N: 2, T: 0}, parties)
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if errs[0] == nil {
		t.Error("party 0 error missing")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{N: 0}, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(Config{N: 2}, make([]Party, 1)); err == nil {
		t.Error("party count mismatch accepted")
	}
	allCorrupt := []Party{{Corrupt: true, Behavior: func(*Net, PartyID) error { return nil }}}
	if _, err := Run(Config{N: 1}, allCorrupt); err == nil {
		t.Error("all-corrupt accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []PartyID {
		var order []PartyID
		var mu sync.Mutex
		const n = 5
		parties := make([]Party, n)
		parties[0] = honest(func(net *Net, id PartyID) error {
			for k := 0; k < (n-1)*2; k++ {
				msg, err := net.Recv(id)
				if err != nil {
					return err
				}
				mu.Lock()
				order = append(order, msg.From)
				mu.Unlock()
			}
			return nil
		})
		for i := 1; i < n; i++ {
			parties[i] = honest(func(net *Net, id PartyID) error {
				net.Send(id, 0, []byte{1})
				net.Send(id, 0, []byte{2})
				return nil
			})
		}
		if _, err := Run(Config{N: n, T: 1, Seed: 99}, parties); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("orders differ across identical seeded runs: %v vs %v", a, b)
	}
}
