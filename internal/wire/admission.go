package wire

// This file is the ingress-admission layer in front of the pooled frame
// arena (DESIGN.md §2.10). The synchronous protocol tells us exactly how
// much traffic an honest peer may send per round — k payloads of bounded
// size, coalesced into one frame per neighbor — so anything materially
// beyond that bound is, by construction, not protocol traffic and can be
// refused *before* a single pooled byte is allocated for it. The admission
// check runs between a frame's announced length field and its body
// allocation: a hostile length field or a frame storm is charged against
// the sender's budget while it is still just a varint.
//
// Rate limiting is a token bucket keyed to the ROUND clock, not wall time:
// tokens replenish when the local party's round advances. This keeps the
// limiter deterministic (calint's wallclock/detrand checks stay clean in
// this package) and self-scaling — a slow cluster admits traffic slowly,
// a fast one quickly, with no tuning constant tied to real time. The
// burst capacity must cover the rejoin-replay case, where a recovering
// peer legitimately receives up to RejoinWindow buffered frames at once.
//
// Violations are typed (Reason) so transports can demote a peer with a
// structured verdict: budget (one frame too large), rate (cumulative
// frames/bytes beyond the bucket), stall (mid-frame trickle past the read
// deadline — slow-loris), protocol (structurally invalid frame), plus the
// handshake/unreachable reasons used by the connection layer itself.

import (
	"errors"
	"fmt"
	"sync"
)

// Reason classifies why ingress traffic from a peer was refused (and the
// peer demoted to faulty). ReasonNone is the zero value for live peers.
type Reason uint8

const (
	// ReasonNone: no violation (the peer is live).
	ReasonNone Reason = iota
	// ReasonBudget: a single frame announced more bytes than the per-frame
	// budget allows.
	ReasonBudget
	// ReasonRate: cumulative frames or bytes exceeded the round-clock
	// token bucket.
	ReasonRate
	// ReasonStall: the peer made partial progress on a frame and then
	// trickled past the read deadline (slow-loris signature).
	ReasonStall
	// ReasonProtocol: a structurally invalid frame (see ErrFrame).
	ReasonProtocol
	// ReasonHandshake: a hello/rejoin handshake violation (oversized or
	// malformed hello, rejoin gap beyond the replay window).
	ReasonHandshake
	// ReasonUnreachable: the reconnect budget for the peer's link was
	// exhausted without re-establishing it.
	ReasonUnreachable
)

// String returns the short lowercase label used in Stats and logs.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonBudget:
		return "budget"
	case ReasonRate:
		return "rate"
	case ReasonStall:
		return "stall"
	case ReasonProtocol:
		return "protocol"
	case ReasonHandshake:
		return "handshake"
	case ReasonUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// ErrAdmission is the sentinel wrapped by every AdmissionError, letting
// transports separate "this peer is hostile, demote it" (admission) from
// "this frame is garbage, demote it" (ErrFrame) and from plain I/O errors
// (reconnect).
var ErrAdmission = errors.New("wire: admission denied")

// AdmissionError is a typed ingress violation. It wraps ErrAdmission.
type AdmissionError struct {
	Reason Reason
	Detail string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("wire: admission denied (%s): %s", e.Reason, e.Detail)
}

func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// StallError builds the slow-loris verdict the transport's read loop
// attaches when a read deadline expires mid-frame.
func StallError(detail string) *AdmissionError {
	return &AdmissionError{Reason: ReasonStall, Detail: detail}
}

// Gate admits or refuses one inbound frame of the announced size, before
// any allocation for its body. A nil Gate admits everything.
type Gate interface {
	AdmitFrame(size uint64) error
}

// Budget bounds what one peer may send this party, in protocol units.
// The zero value of any field is replaced by a permissive default (see
// normalized), so a partially specified budget tightens only the stated
// dimensions.
type Budget struct {
	// FrameBytes caps a single frame's announced body size. A frame over
	// this limit is refused with ReasonBudget before allocation.
	FrameBytes uint64
	// RoundFrames is the number of frame tokens replenished per round.
	RoundFrames uint64
	// RoundBytes is the number of body-byte tokens replenished per round.
	RoundBytes uint64
	// BurstRounds is the bucket capacity, expressed in rounds of
	// replenishment; it must cover the rejoin-replay burst (a recovering
	// peer receives up to RejoinWindow frames at once).
	BurstRounds uint64
}

// defaultBudget mirrors the transport's structural frame bound: nothing
// tighter than "one maximal frame per round with generous burst" unless
// the caller says so.
const (
	defaultFrameBytes  = 64 << 20 // = tcpnet maxFrame
	defaultRoundFrames = 8
	defaultBurstRounds = 144 // default RejoinWindow (128) + slack
)

// DefaultBudget returns the budget applied when a transport is configured
// without one: per-frame bound equal to the structural maxFrame, 8 frames
// per round, bytes uncapped below the structural bound, and burst capacity
// covering a full rejoin-replay window of rejoinWindow frames.
func DefaultBudget(maxFrame uint64, rejoinWindow int) Budget {
	b := Budget{
		FrameBytes:  maxFrame,
		RoundFrames: defaultRoundFrames,
		RoundBytes:  maxFrame,
		BurstRounds: uint64(rejoinWindow) + 16,
	}
	return b.normalized()
}

// ProtocolBudget derives a tight budget from the protocol's communication
// bound: per round, an honest peer sends one frame per neighbor carrying
// at most instances payloads of at most payloadBytes each (plus varint
// framing overhead), and a rejoin replay may deliver up to rejoinWindow
// such frames at once. The returned budget admits that traffic with ~4×
// headroom and refuses order-of-magnitude excursions beyond it.
func ProtocolBudget(instances, payloadBytes, rejoinWindow int) Budget {
	if instances < 1 {
		instances = 1
	}
	if payloadBytes < 1 {
		payloadBytes = 1
	}
	// Worst-case honest body: count varint + per-payload (length varint +
	// body) + round varint, padded to the next power-of-two-ish slack.
	perRound := uint64(instances)*(uint64(payloadBytes)+10) + 64
	b := Budget{
		FrameBytes:  4 * perRound,
		RoundFrames: 8,
		RoundBytes:  4 * perRound,
		BurstRounds: uint64(rejoinWindow) + 16,
	}
	return b.normalized()
}

// normalized fills zero fields with permissive defaults and clamps the
// bucket capacities so they cannot overflow uint64 arithmetic.
func (b Budget) normalized() Budget {
	if b.FrameBytes == 0 {
		b.FrameBytes = defaultFrameBytes
	}
	if b.RoundFrames == 0 {
		b.RoundFrames = defaultRoundFrames
	}
	if b.RoundBytes == 0 {
		b.RoundBytes = b.FrameBytes
	}
	if b.RoundBytes < b.FrameBytes {
		// A budget that replenishes fewer bytes than one maximal frame
		// would starve honest maximal frames forever; lift the floor.
		b.RoundBytes = b.FrameBytes
	}
	if b.BurstRounds == 0 {
		b.BurstRounds = defaultBurstRounds
	}
	return b
}

// capacities returns the token-bucket capacities with saturating
// arithmetic (a deliberately huge budget must mean "unbounded", not wrap).
func (b Budget) capacities() (frameCap, byteCap uint64) {
	return mulSat(b.RoundFrames, b.BurstRounds), mulSat(b.RoundBytes, b.BurstRounds)
}

func mulSat(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > ^uint64(0)/b {
		return ^uint64(0)
	}
	return a * b
}

func addSat(a, b uint64) uint64 {
	if a > ^uint64(0)-b {
		return ^uint64(0)
	}
	return a + b
}

// AdmissionCounters is a snapshot of one peer's ingress accounting.
type AdmissionCounters struct {
	FramesAdmitted uint64
	BytesAdmitted  uint64
	FramesRejected uint64
}

// Admission is one peer's ingress gate: a round-clock token bucket plus
// the per-frame byte bound. It is safe for concurrent use (the transport's
// round loop Advances it while a read loop Admits against it, and read
// loops across reconnect generations may briefly overlap). The buckets
// start full so a peer's first burst — including a rejoin replay —
// is admitted without waiting for rounds to tick.
type Admission struct {
	mu       sync.Mutex
	budget   Budget
	round    uint64
	frames   uint64 // remaining frame tokens
	bytes    uint64 // remaining body-byte tokens
	counters AdmissionCounters
}

// NewAdmission builds a gate for one peer under b (normalized; zero
// fields become permissive defaults).
func NewAdmission(b Budget) *Admission {
	b = b.normalized()
	frameCap, byteCap := b.capacities()
	return &Admission{budget: b, frames: frameCap, bytes: byteCap}
}

// Budget returns the normalized budget the gate enforces.
func (a *Admission) Budget() Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// Advance moves the gate's round clock forward, replenishing tokens for
// the rounds elapsed (capped at the burst capacity). Calls with a round
// at or behind the clock are no-ops, so it is safe to call once per read.
func (a *Admission) Advance(round uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if round <= a.round {
		return
	}
	d := round - a.round
	a.round = round
	if d > a.budget.BurstRounds {
		d = a.budget.BurstRounds
	}
	frameCap, byteCap := a.budget.capacities()
	if a.frames = addSat(a.frames, mulSat(d, a.budget.RoundFrames)); a.frames > frameCap {
		a.frames = frameCap
	}
	if a.bytes = addSat(a.bytes, mulSat(d, a.budget.RoundBytes)); a.bytes > byteCap {
		a.bytes = byteCap
	}
}

// AdmitFrame charges one frame of the announced body size against the
// peer's budget. It returns nil and debits the buckets when the frame is
// admitted; otherwise an *AdmissionError with ReasonBudget (frame too
// large) or ReasonRate (bucket empty). The happy path does not allocate.
func (a *Admission) AdmitFrame(size uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if size > a.budget.FrameBytes {
		a.counters.FramesRejected++
		return &AdmissionError{
			Reason: ReasonBudget,
			Detail: fmt.Sprintf("frame of %d bytes exceeds per-frame budget %d", size, a.budget.FrameBytes),
		}
	}
	if a.frames == 0 {
		a.counters.FramesRejected++
		return &AdmissionError{
			Reason: ReasonRate,
			Detail: fmt.Sprintf("frame rate exceeded at round %d (%d frames/round, burst %d rounds)",
				a.round, a.budget.RoundFrames, a.budget.BurstRounds),
		}
	}
	if a.bytes < size {
		a.counters.FramesRejected++
		return &AdmissionError{
			Reason: ReasonRate,
			Detail: fmt.Sprintf("byte rate exceeded at round %d: frame of %d bytes, %d byte tokens left",
				a.round, size, a.bytes),
		}
	}
	a.frames--
	a.bytes -= size
	a.counters.FramesAdmitted++
	a.counters.BytesAdmitted += size
	return nil
}

// Counters returns a snapshot of the peer's ingress accounting.
func (a *Admission) Counters() AdmissionCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counters
}
