package tcpnet_test

import (
	"sync"
	"testing"

	"convexagreement/internal/transport"
	"convexagreement/internal/transporttest"
)

func TestConformance(t *testing.T) {
	transporttest.Conformance(t, func(t *testing.T, n, tc int, fns []func(net transport.Net) error) {
		t.Helper()
		conns := dialAll(t, newCluster(t, n, tc))
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = fns[i](conns[i])
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("party %d: %v", i, err)
			}
		}
	})
}
