// Package aa implements synchronous Approximate Agreement (AA), the
// relaxation of Convex Agreement from which the convex-validity requirement
// historically originates (Dolev, Lynch, Pinter, Stark, Weihl [16]; §1.1 of
// the paper): honest outputs must lie in the honest inputs' hull and be
// within a pre-agreed ε of each other — but need not be equal.
//
// The protocol is the classic iterated trim-and-midpoint rule: each round
// every party broadcasts its current value, discards the t lowest and t
// highest values received, and moves to the midpoint of the rest. For
// t < n/3 each round provably halves the honest values' diameter while
// staying inside the honest hull:
//
//   - the trimmed minimum lies in [h_min, h_(t+1)] and the trimmed maximum
//     in [h_(n-2t), h_max] (at most t byzantine values survive trimming on
//     either side, and all honest values are present);
//   - those two windows are disjoint (t+1 ≤ n−2t ⇔ n > 3t), so any two
//     honest midpoints differ by at most half the honest diameter.
//
// AA exists in this repository as the comparison point the paper's
// introduction draws: it converges fast but pays Θ(ℓn²) bits per round and
// only ever reaches ε-agreement, while Convex Agreement reaches exact
// agreement in O(ℓn + poly(n, κ)) bits (experiment E12).
package aa

import (
	"fmt"
	"math/big"
	"sort"

	"convexagreement/internal/transport"
)

// Run executes synchronous Approximate Agreement. All honest parties must
// call it in the same round with the same tag, diameterBound and epsilon;
// diameterBound must be a public upper bound on the spread of honest
// inputs, and epsilon ≥ 1 the agreement tolerance (values are integers; a
// caller needing finer resolution scales its fixed-point representation).
//
// Guarantees for t < n/3: Termination after ⌈log₂(diameterBound/ε)⌉+2
// rounds; every output lies in the honest inputs' hull; honest outputs are
// pairwise within epsilon.
func Run(env transport.Net, tag string, input, diameterBound, epsilon *big.Int) (*big.Int, error) {
	if input == nil || diameterBound == nil || epsilon == nil {
		return nil, fmt.Errorf("aa: nil argument")
	}
	if epsilon.Sign() <= 0 || diameterBound.Sign() < 0 {
		return nil, fmt.Errorf("aa: need epsilon ≥ 1 and diameterBound ≥ 0")
	}
	t := env.T()
	v := new(big.Int).Set(input)
	for round := 0; round < Rounds(diameterBound, epsilon); round++ {
		in, err := transport.ExchangeAll(env, tag+"/aa-val", v.Bytes())
		if err != nil {
			return nil, err
		}
		received := make([]*big.Int, 0, env.N())
		for _, payload := range transport.FirstPerSender(in) {
			received = append(received, new(big.Int).SetBytes(payload))
		}
		if len(received) <= 2*t {
			return nil, fmt.Errorf("aa: only %d values received, need > %d", len(received), 2*t)
		}
		sort.Slice(received, func(i, j int) bool { return received[i].Cmp(received[j]) < 0 })
		trimmed := received[t : len(received)-t]
		lo, hi := trimmed[0], trimmed[len(trimmed)-1]
		// v := ⌊(lo + hi)/2⌋ — the midpoint of the trimmed range.
		v = new(big.Int).Add(lo, hi)
		v.Rsh(v, 1)
	}
	return v, nil
}

// Rounds returns the number of iterations Run performs for the given
// public diameter bound and tolerance: ⌈log₂(D/ε)⌉ plus two slack rounds
// absorbing integer-floor effects.
func Rounds(diameterBound, epsilon *big.Int) int {
	ratio := new(big.Int).Div(diameterBound, epsilon)
	rounds := 2
	for ratio.Sign() > 0 {
		ratio.Rsh(ratio, 1)
		rounds++
	}
	return rounds
}
