package faultnet_test

import (
	"testing"

	"convexagreement/internal/channet"
	"convexagreement/internal/faultnet"
	"convexagreement/internal/transport"
	"convexagreement/internal/transporttest"
)

// TestConformance runs the full transport contract battery over
// faultnet-wrapped channet handles with all faults disabled: the wrapper
// must be semantically invisible.
func TestConformance(t *testing.T) {
	transporttest.Conformance(t, func(t *testing.T, n, tc int, fns []func(net transport.Net) error) {
		t.Helper()
		hub, err := channet.NewHub(n, tc)
		if err != nil {
			t.Fatal(err)
		}
		plan := &faultnet.Plan{Seed: 1}
		wrapped := make([]func(net transport.Net) error, n)
		for i := range fns {
			fn := fns[i]
			wrapped[i] = func(net transport.Net) error {
				return fn(faultnet.Wrap(net, plan))
			}
		}
		if err := hub.Run(wrapped); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceFaults runs the fault-tolerance battery over the wrapped
// transport: injected-fault machinery must not break graceful degradation.
func TestConformanceFaults(t *testing.T) {
	transporttest.ConformanceFaults(t, faultCluster)
}

// TestConformanceIngress runs the flood battery through the fault-injection
// wrapper: flood pressure and injected-fault machinery must compose without
// disturbing honest rounds.
func TestConformanceIngress(t *testing.T) {
	transporttest.ConformanceIngress(t, faultCluster)
}

func faultCluster(t *testing.T, n, tc int, fns []func(net transport.Net, leave func()) error) {
	t.Helper()
	hub, err := channet.NewHub(n, tc)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faultnet.Plan{Seed: 2}
	wrapped := make([]func(net transport.Net) error, n)
	for i := range fns {
		id, fn := i, fns[i]
		wrapped[i] = func(net transport.Net) error {
			return fn(faultnet.Wrap(net, plan), func() { hub.Disconnect(id) })
		}
	}
	if err := hub.Run(wrapped); err != nil {
		t.Fatal(err)
	}
}
