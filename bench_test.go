// Benchmark harness: one benchmark per reproduction experiment (E1–E17 of
// DESIGN.md §3 / EXPERIMENTS.md). Each benchmark prints its experiment's
// full table once (the same rows cmd/cabench produces) and then times a
// representative protocol instance, reporting the paper's cost measures as
// custom metrics (bits, bits/(ℓn), rounds).
//
// Run with: go test -bench=. -benchmem
package convexagreement_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	ca "convexagreement"

	"convexagreement/internal/experiments"
	"convexagreement/internal/supervisor"
)

var tablesOnce sync.Map

// printTable renders an experiment table exactly once per process.
func printTable(b *testing.B, id string, gen func() experiments.Table) {
	b.Helper()
	if _, loaded := tablesOnce.LoadOrStore(id, true); loaded {
		return
	}
	b.Logf("\n%s", gen().Render())
}

// benchInputs draws a deterministic input vector.
func benchInputs(n, bits int, seed int64) []*big.Int {
	rng := rand.New(rand.NewSource(seed))
	bound := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int).Rand(rng, bound)
	}
	return out
}

// runAgree executes one instance and pushes its cost measures into the
// benchmark's custom metrics.
func runAgree(b *testing.B, inputs []*big.Int, opts ca.Options) *ca.Result {
	b.Helper()
	res, err := ca.Agree(inputs, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func reportCost(b *testing.B, res *ca.Result, ell, n int) {
	b.ReportMetric(float64(res.HonestBits), "honest_bits")
	b.ReportMetric(float64(res.Rounds), "rounds")
	if ell > 0 {
		b.ReportMetric(float64(res.HonestBits)/float64(ell*n), "bits/(ℓn)")
	}
}

// BenchmarkE1_BitsVsEll regenerates E1 (Corollary 2 headline: linear-in-ℓ
// communication) and times Π_ℤ on a 2^16-bit instance at n=10.
func BenchmarkE1_BitsVsEll(b *testing.B) {
	printTable(b, "E1", func() experiments.Table { return experiments.E1BitsVsEll(true) })
	const n, ell = 10, 1 << 16
	inputs := benchInputs(n, ell, 1)
	var res *ca.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimal, Seed: 1})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE2_BitsVsN regenerates E2 (protocol-vs-baseline ordering) and
// times the three protocols on one shared instance for direct comparison.
func BenchmarkE2_BitsVsN(b *testing.B) {
	printTable(b, "E2", func() experiments.Table { return experiments.E2BitsVsN(true) })
	const n, ell = 7, 1 << 14
	inputs := benchInputs(n, ell, 2)
	for _, proto := range []ca.Protocol{ca.ProtoOptimalNat, ca.ProtoBroadcast, ca.ProtoHighCost} {
		proto := proto
		b.Run(string(proto), func(b *testing.B) {
			var res *ca.Result
			for i := 0; i < b.N; i++ {
				res = runAgree(b, inputs, ca.Options{Protocol: proto, Seed: 2})
			}
			reportCost(b, res, ell, n)
		})
	}
}

// BenchmarkE3_Rounds regenerates E3 (round complexity O(n log n) vs O(n)
// vs O(n²)) and times the round-dominant small-ℓ regime.
func BenchmarkE3_Rounds(b *testing.B) {
	printTable(b, "E3", func() experiments.Table { return experiments.E3Rounds(true) })
	const n, ell = 10, 1 << 10
	inputs := benchInputs(n, ell, 3)
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 3})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE4_BAPlusProperties regenerates E4 (Theorem 6 property campaign;
// the table's violation columns must be all-zero) and times one full
// campaign cell.
func BenchmarkE4_BAPlusProperties(b *testing.B) {
	printTable(b, "E4", func() experiments.Table { return experiments.E4BAPlusProperties(true) })
	for i := 0; i < b.N; i++ {
		tbl := experiments.E4BAPlusProperties(true)
		for _, row := range tbl.Rows {
			for _, cell := range row[2:5] {
				if cell != "0" {
					b.Fatalf("property violation recorded: %v", row)
				}
			}
		}
	}
}

// BenchmarkE5_LBAPlusBreakdown regenerates E5 (Theorem 1 cost split) and
// times Π_ℕ on the clustered long-prefix workload that exercises dispersal.
func BenchmarkE5_LBAPlusBreakdown(b *testing.B) {
	printTable(b, "E5", func() experiments.Table { return experiments.E5LBAPlusBreakdown(true) })
	const n, ell = 7, 1 << 16
	base := new(big.Int).Lsh(big.NewInt(1), ell-1)
	rng := rand.New(rand.NewSource(5))
	inputs := make([]*big.Int, n)
	for i := range inputs {
		inputs[i] = new(big.Int).Add(base, big.NewInt(rng.Int63n(1<<16)))
	}
	var res *ca.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 5})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE6_Threshold regenerates E6 (the ℓ = Ω(κ·n·log²n) optimality
// threshold) and times an instance right at the crossover region.
func BenchmarkE6_Threshold(b *testing.B) {
	printTable(b, "E6", func() experiments.Table { return experiments.E6Threshold(true) })
	const n, ell = 7, 1 << 14
	inputs := benchInputs(n, ell, 6)
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 6})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE7_ValidityCampaign regenerates E7 (Definition 1 under attack;
// violations column must be all-zero) and times one ghost-attacked run.
func BenchmarkE7_ValidityCampaign(b *testing.B) {
	printTable(b, "E7", func() experiments.Table { return experiments.E7ValidityCampaign(true) })
	const n, ell = 7, 24
	inputs := benchInputs(n, ell, 7)
	corr := map[int]ca.Corruption{
		1: {Kind: ca.AdvGhost, Input: big.NewInt(0)},
		4: {Kind: ca.AdvGhost, Input: new(big.Int).Lsh(big.NewInt(1), 40)},
	}
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimal, Corruptions: corr, Seed: 7})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE8_HighCostCA regenerates E8 (Theorem 3: O(ℓn³) bits, O(n)
// rounds) and times HIGHCOSTCA directly.
func BenchmarkE8_HighCostCA(b *testing.B) {
	printTable(b, "E8", func() experiments.Table { return experiments.E8HighCostCA(true) })
	const n, ell = 10, 1 << 12
	inputs := benchInputs(n, ell, 8)
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoHighCost, Seed: 8})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE9_BitsVsBlocks regenerates E9 (§3 bit search vs §4 block
// search) and times both fixed-length variants on one long instance.
func BenchmarkE9_BitsVsBlocks(b *testing.B) {
	printTable(b, "E9", func() experiments.Table { return experiments.E9BitsVsBlocks(true) })
	const n = 7
	const ell = n * n * 1024
	inputs := benchInputs(n, ell, 9)
	for _, proto := range []ca.Protocol{ca.ProtoFixedLength, ca.ProtoFixedLengthBlocks} {
		proto := proto
		b.Run(string(proto), func(b *testing.B) {
			var res *ca.Result
			for i := 0; i < b.N; i++ {
				res = runAgree(b, inputs, ca.Options{Protocol: proto, Width: ell, Seed: 9})
			}
			reportCost(b, res, ell, n)
		})
	}
}

// BenchmarkE11_ParallelComposition regenerates E11 (parallel vs sequential
// broadcast baseline) and times the parallel-composed variant.
func BenchmarkE11_ParallelComposition(b *testing.B) {
	printTable(b, "E11", func() experiments.Table { return experiments.E11ParallelComposition(true) })
	const n, ell = 7, 1 << 12
	inputs := benchInputs(n, ell, 11)
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoBroadcastParallel, Seed: 11})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE12_CAvsAA regenerates E12 (exact CA vs ε-approximate AA) and
// times synchronous AA at full precision on a short instance.
func BenchmarkE12_CAvsAA(b *testing.B) {
	printTable(b, "E12", func() experiments.Table { return experiments.E12CAvsAA(true) })
	inputs := benchInputs(7, 20, 12)
	var res *ca.ApproxResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ca.ApproxAgree(inputs, new(big.Int).Lsh(big.NewInt(1), 20), big.NewInt(1), ca.Options{Seed: 12})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.HonestBits), "honest_bits")
	b.ReportMetric(float64(res.Rounds), "rounds")
}

// BenchmarkE13_AsyncAA regenerates E13 (asynchronous AA under adversarial
// schedulers) and times one async instance at ε=16.
func BenchmarkE13_AsyncAA(b *testing.B) {
	printTable(b, "E13", func() experiments.Table { return experiments.E13AsyncAA(true) })
	inputs := benchInputs(7, 16, 13)
	var res *ca.ApproxResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ca.AsyncApproxAgree(inputs, new(big.Int).Lsh(big.NewInt(1), 16), big.NewInt(16),
			ca.AsyncOptions{Seed: 13})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Deliveries), "deliveries")
}

// BenchmarkE14_VectorScaling regenerates E14 (vector CA over parallel
// composition) and times a 4-dimensional instance.
func BenchmarkE14_VectorScaling(b *testing.B) {
	printTable(b, "E14", func() experiments.Table { return experiments.E14VectorScaling(true) })
	const n, d, ell = 7, 4, 256
	rng := rand.New(rand.NewSource(14))
	bound := new(big.Int).Lsh(big.NewInt(1), ell)
	inputs := make([][]*big.Int, n)
	for i := range inputs {
		vec := make([]*big.Int, d)
		for c := range vec {
			vec[c] = new(big.Int).Rand(rng, bound)
		}
		inputs[i] = vec
	}
	var res *ca.VectorResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = ca.AgreeVector(inputs, ca.Options{Seed: 14})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.HonestBits), "honest_bits")
	b.ReportMetric(float64(res.Rounds), "rounds")
}

// BenchmarkE15_LoadBalance regenerates E15 (per-party load distribution).
func BenchmarkE15_LoadBalance(b *testing.B) {
	printTable(b, "E15", func() experiments.Table { return experiments.E15LoadBalance(true) })
	const n, ell = 7, 1 << 14
	inputs := benchInputs(n, ell, 15)
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 15})
	}
	var max int64
	for _, bits := range res.BitsByParty {
		if bits > max {
			max = bits
		}
	}
	b.ReportMetric(float64(max), "max_party_bits")
}

// BenchmarkE16_DispersalAblation regenerates E16 (RS+Merkle vs naive
// dispersal inside Π_ℓBA+).
func BenchmarkE16_DispersalAblation(b *testing.B) {
	printTable(b, "E16", func() experiments.Table { return experiments.E16DispersalAblation(true) })
	const n, ell = 7, 1 << 16
	inputs := make([]*big.Int, n)
	shared := benchInputs(1, ell, 16)[0]
	for i := range inputs {
		inputs[i] = shared
	}
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: 16})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkE17_FaultSweep regenerates E17 (robustness under message-level
// faults) and times one ProtoOptimal run with drops and delays injected on
// the last party's links via the public fault wrapper.
func BenchmarkE17_FaultSweep(b *testing.B) {
	printTable(b, "E17", func() experiments.Table { return experiments.E17FaultSweep(true) })
	const n = 7
	cfg := ca.FaultConfig{
		Seed: 17,
		Rules: []ca.FaultRule{
			{Kind: ca.FaultDrop, From: ca.AnyParty, To: n - 1, Prob: 0.25},
			{Kind: ca.FaultDelay, From: n - 1, To: ca.AnyParty, Prob: 0.25, DelayRounds: 2},
		},
		MaxRounds: 4000,
	}
	for i := 0; i < b.N; i++ {
		locals, err := ca.NewLocalCluster(n, (n-1)/3)
		if err != nil {
			b.Fatal(err)
		}
		errs := make([]error, n)
		var wg sync.WaitGroup
		for p, l := range locals {
			tr, err := ca.WrapFaulty(l, cfg)
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(p int, l *ca.LocalTransport, tr *ca.FaultyTransport) {
				defer wg.Done()
				// Early finishers must leave the lock-step cluster.
				defer l.Close()
				_, errs[p] = ca.RunParty(tr, ca.ProtoOptimal, 0, big.NewInt(int64(990+p)))
			}(p, l, tr)
		}
		wg.Wait()
		// All faults target party n−1 (within the t budget); the clean
		// parties must finish without error.
		for p := 0; p < n-1; p++ {
			if errs[p] != nil {
				b.Fatal(errs[p])
			}
		}
	}
}

// BenchmarkE18_CrashRecovery regenerates E18 (checkpointed crash recovery)
// and times one supervised channet session that is killed once mid-instance
// and resumed from its write-ahead log, reporting the restart count.
func BenchmarkE18_CrashRecovery(b *testing.B) {
	printTable(b, "E18", func() experiments.Table { return experiments.E18CrashRecovery(true) })
	const (
		n         = 4
		K         = n - 1
		instances = 2
	)
	cfg := ca.FaultConfig{Kills: []ca.FaultKill{{Party: K, Round: 100}}}
	input := func(party, seq int) *big.Int { return big.NewInt(int64(100*seq + 3*party + 1)) }
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		locals, err := ca.NewLocalCluster(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		errs := make([]error, n)
		var wg sync.WaitGroup
		for p := 0; p < n-1; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer locals[p].Close()
				s := ca.NewSession(locals[p])
				for seq := 0; seq < instances; seq++ {
					if _, errs[p] = s.Agree(ca.ProtoOptimal, 0, input(p, seq)); errs[p] != nil {
						return
					}
				}
			}()
		}
		var runErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer locals[K].Close()
			tr, err := ca.WrapFaulty(locals[K], cfg)
			if err != nil {
				runErr = err
				return
			}
			_, runErr = supervisor.Run(supervisor.Config{
				Delta:       100 * time.Millisecond,
				StallRounds: 100,
				MaxRestarts: 2,
				BackoffBase: time.Millisecond,
				N:           n,
				T:           1,
			}, func(a *supervisor.Attempt) error {
				s := ca.NewSession(tr)
				if err := s.Resume(dir); err != nil {
					return err
				}
				defer s.Close()
				a.Progress(s.Rounds)
				for seq := s.Seq(); seq < instances; seq++ {
					if _, err := s.Agree(ca.ProtoOptimal, 0, input(K, int(seq))); err != nil {
						return err
					}
				}
				return nil
			})
		}()
		wg.Wait()
		if runErr != nil {
			b.Fatal(runErr)
		}
		for p := 0; p < n-1; p++ {
			if errs[p] != nil {
				b.Fatal(errs[p])
			}
		}
	}
	b.ReportMetric(1, "restarts/op")
}

// BenchmarkE10_AdversaryAblation regenerates E10 (communication stability
// across adversary strategies) and times the worst-observed strategy.
func BenchmarkE10_AdversaryAblation(b *testing.B) {
	printTable(b, "E10", func() experiments.Table { return experiments.E10AdversaryAblation(true) })
	const n, ell = 7, 1 << 13
	inputs := benchInputs(n, ell, 10)
	corr := map[int]ca.Corruption{
		2: {Kind: ca.AdvEquivocate},
		5: {Kind: ca.AdvSpam},
	}
	var res *ca.Result
	for i := 0; i < b.N; i++ {
		res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Corruptions: corr, Seed: 10})
	}
	reportCost(b, res, ell, n)
}

// BenchmarkSweepN1024 is the scale proof for the zero-copy wire path
// (DESIGN.md §2.9): a full synchronous approximate-agreement instance at
// n=1024 — roughly a million messages per round — with a hard per-party
// heap budget. The assertion is deliberately generous (512 KiB/party,
// ~7× the observed footprint) so it catches a pooling regression that
// reintroduces per-message allocation, not benign noise. One op is a
// whole instance: expect seconds per iteration.
func BenchmarkSweepN1024(b *testing.B) {
	const n, bits = 1024, 64
	inputs := benchInputs(n, bits, 1024)
	maxInput := new(big.Int).Lsh(big.NewInt(1), bits)
	eps := new(big.Int).Lsh(big.NewInt(1), 32)
	var res *ca.ApproxResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = ca.ApproxAgree(inputs, maxInput, eps, ca.Options{Seed: 1024})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	perParty := float64(ms.HeapAlloc) / n
	const budget = 512 << 10
	if perParty > budget {
		b.Fatalf("heap budget exceeded: %.0f B/party retained after GC (budget %d B/party)", perParty, budget)
	}
	b.ReportMetric(perParty/1024, "KiB/party")
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(float64(res.HonestBits), "honest_bits")
}

// BenchmarkLargeN times the optimal protocol in the regime the hot-path
// pass opened up (DESIGN.md §2.4): full instances at n ≥ 64, where the
// κ·n²·log²n witness term dominates and which were previously too slow to
// sweep. These are whole-protocol numbers — thousands of lock-step rounds
// per op — so expect seconds, not microseconds.
func BenchmarkLargeN(b *testing.B) {
	const ell = 1 << 14
	for _, n := range []int{64, 128} {
		n := n
		b.Run(fmt.Sprintf("OptimalNat_n%d", n), func(b *testing.B) {
			inputs := benchInputs(n, ell, int64(n))
			var res *ca.Result
			for i := 0; i < b.N; i++ {
				res = runAgree(b, inputs, ca.Options{Protocol: ca.ProtoOptimalNat, Seed: int64(n)})
			}
			reportCost(b, res, ell, n)
		})
	}
}
