package ba_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"convexagreement/internal/adversary"
	"convexagreement/internal/ba"
	"convexagreement/internal/sim"
	"convexagreement/internal/testutil"
)

// TestBinaryPropertyRandomized drives phase-king through testing/quick:
// random n, corruption placement, strategy mix, and inputs — Agreement must
// always hold and Validity must hold whenever honest inputs pre-agree.
func TestBinaryPropertyRandomized(t *testing.T) {
	strategies := adversary.Catalog()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(9)
		tc := (n - 1) / 3
		numCorrupt := rng.Intn(tc + 1)
		corrupt := map[int]sim.Behavior{}
		for len(corrupt) < numCorrupt {
			corrupt[rng.Intn(n)] = strategies[rng.Intn(len(strategies))].Build(rng.Int63())
		}
		inputs := make([]byte, n)
		pre := rng.Intn(2) == 0
		preBit := byte(rng.Intn(2))
		for i := range inputs {
			if pre {
				inputs[i] = preBit
			} else {
				inputs[i] = byte(rng.Intn(2))
			}
		}
		res, err := testutil.Run(sim.Config{N: n, T: tc}, corrupt,
			func(env *sim.Env) (byte, error) {
				return ba.Binary(env, "ba", inputs[env.ID()])
			})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		out, err := testutil.AgreeValue(res)
		if err != nil {
			t.Logf("seed %d: agreement violated: %v", seed, err)
			return false
		}
		if out > 1 {
			return false
		}
		if pre && out != preBit {
			t.Logf("seed %d: validity violated (%d vs %d)", seed, out, preBit)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
