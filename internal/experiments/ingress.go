package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"

	ca "convexagreement"
)

// E19 is the active-adversary sweep: where E17's faults are *passive* link
// disturbances (drops, delays, corruption) confined to honest parties'
// links, E19 gives the adversary a live attacker goroutine on the
// deployment stack. One corrupt party floods the cluster with duplicate,
// oversize, or bursty garbage traffic — resource-exhaustion attacks, the
// deployment mirror of adversary.ActiveCatalog — while the honest parties
// run Π_ℤ to completion. Agreement and convex validity over the honest
// parties must survive every attack, and identically-seeded dual runs must
// keep seed-exact transcript digests, proving the ingress defenses
// (admission, shedding, dedup) are themselves deterministic.

// e19MaxRounds bounds every run; a protocol starved to a standstill
// surfaces as ErrRoundLimit instead of hanging the experiment.
const e19MaxRounds = 4000

// e19Attack is one attacker round-loop over the raw deployment transport.
// It is deterministic in (kind, seed, round): honest parties' received
// streams — and so their transcript digests — depend only on the scenario,
// which is what the replay column asserts.
func e19Attack(kind string, seed int64, tr ca.Transport, honestDone *atomic.Int32, honest int32) {
	rng := rand.New(rand.NewSource(seed))
	n := tr.N()
	for r := 0; r < e19MaxRounds && honestDone.Load() < honest; r++ {
		var out []ca.Packet
		switch kind {
		case "flood", "flood+drop":
			payload := make([]byte, 24)
			rng.Read(payload)
			for to := 0; to < n; to++ {
				for c := 0; c < 12; c++ {
					out = append(out, ca.Packet{To: to, Tag: "adv", Payload: payload})
				}
			}
		case "oversize":
			big := make([]byte, 32<<10)
			rng.Read(big)
			for to := 0; to < n; to++ {
				out = append(out, ca.Packet{To: to, Tag: "adv", Payload: big})
			}
		case "garbage-burst":
			if r%3 == 2 {
				for to := 0; to < n; to++ {
					for c := 0; c < 48; c++ {
						buf := make([]byte, rng.Intn(64)+1)
						rng.Read(buf)
						out = append(out, ca.Packet{To: to, Tag: "adv", Payload: buf})
					}
				}
			}
		}
		if _, err := tr.Exchange(out); err != nil {
			return
		}
	}
}

// e19Run executes ProtoOptimal on the honest parties of a local cluster
// while party n-1 runs the named attack. The attacker's links additionally
// carry cfg's fault rules (empty for the pure-flood scenarios).
type e19Result struct {
	outs    []*big.Int
	errs    []error
	digests []uint64
	rounds  []int
}

func e19Run(n int, kind string, inputs []*big.Int, cfg ca.FaultConfig) e19Result {
	locals, err := ca.NewLocalCluster(n, defaultT(n))
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	attacker := n - 1
	res := e19Result{
		outs:    make([]*big.Int, n),
		errs:    make([]error, n),
		digests: make([]uint64, n),
		rounds:  make([]int, n),
	}
	var honestDone atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer locals[i].Close()
			if i == attacker {
				// The attacker speaks the raw transport: its flood is traffic,
				// not protocol. It stands down once every honest party is done
				// (or its own rounds error out as the cluster drains).
				e19Attack(kind, cfg.Seed^int64(i), locals[i], &honestDone, int32(n-1))
				return
			}
			tr, err := ca.WrapFaulty(locals[i], cfg)
			if err != nil {
				res.errs[i] = err
				honestDone.Add(1)
				return
			}
			res.outs[i], res.errs[i] = ca.RunParty(tr, ca.ProtoOptimal, 0, inputs[i])
			res.digests[i] = tr.Transcript()
			res.rounds[i] = tr.Round()
			honestDone.Add(1)
		}(i)
	}
	wg.Wait()
	return res
}

// e19Check verifies one scenario at one n over two identically-seeded runs.
func e19Check(n int, inputs []*big.Int, kind string, cfg ca.FaultConfig) (agree, valid, replay bool, rounds int) {
	a := e19Run(n, kind, inputs, cfg)
	b := e19Run(n, kind, inputs, cfg)
	agree, valid, replay = true, true, true

	attacker := n - 1
	var ref *big.Int
	lo, hi := new(big.Int), new(big.Int)
	first := true
	for i := 0; i < attacker; i++ {
		if a.errs[i] != nil || a.outs[i] == nil {
			agree, valid = false, false
			continue
		}
		if ref == nil {
			ref = a.outs[i]
			rounds = a.rounds[i]
		} else if a.outs[i].Cmp(ref) != 0 {
			agree = false
		}
		if first || inputs[i].Cmp(lo) < 0 {
			lo.Set(inputs[i])
		}
		if first || inputs[i].Cmp(hi) > 0 {
			hi.Set(inputs[i])
		}
		first = false
		if a.digests[i] != b.digests[i] {
			replay = false
		}
	}
	if ref == nil || ref.Cmp(lo) < 0 || ref.Cmp(hi) > 0 {
		valid = false
	}
	return agree, valid, replay, rounds
}

// E19IngressSweep measures robustness of the deployment stack under active
// resource-exhaustion adversaries.
func E19IngressSweep(quick bool) Table {
	ns := []int{7, 16, 31}
	if quick {
		ns = []int{7, 16}
	}
	scenarios := []string{"flood", "oversize", "garbage-burst", "flood+drop"}
	tab := Table{
		ID:     "E19",
		Title:  "Active-adversary ingress sweep over the deployment transport",
		Claim:  "with one corrupt party mounting live flood, oversize, and burst attacks (plus link drops in the combined case), Π_ℤ keeps agreement and convex validity over the honest parties, and identically-seeded runs replay identical transcripts",
		Header: []string{"scenario", "n", "t", "agree", "validity", "replay", "rounds"},
	}
	mark := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "VIOLATED"
	}
	for _, kind := range scenarios {
		for _, n := range ns {
			t := defaultT(n)
			attacker := n - 1
			inputs := make([]*big.Int, n)
			for i := range inputs {
				inputs[i] = big.NewInt(990 + int64(i))
			}
			cfg := ca.FaultConfig{Seed: int64(3100 + n), MaxRounds: e19MaxRounds}
			if kind == "flood+drop" {
				cfg.Rules = []ca.FaultRule{
					{Kind: ca.FaultDrop, From: attacker, To: ca.AnyParty, Prob: 0.4},
					{Kind: ca.FaultDrop, From: ca.AnyParty, To: attacker, Prob: 0.2},
				}
			}
			agree, valid, replay, rounds := e19Check(n, inputs, kind, cfg)
			tab.Rows = append(tab.Rows, []string{
				kind, fmt.Sprint(n), fmt.Sprint(t),
				mark(agree), mark(valid), mark(replay), fmt.Sprint(rounds),
			})
		}
	}
	return tab
}
