package sim

import "testing"

// BenchmarkRoundThroughput measures the scheduler's all-to-all round rate:
// the simulation overhead floor under every protocol benchmark.
func BenchmarkRoundThroughput_n16(b *testing.B) {
	benchRoundThroughput(b, 16, 5)
}

// BenchmarkRoundThroughput_n256 is the large-sweep regime where the paper's
// n²·log²n term dominates; round close must stay O(messages) per round, not
// O(n²) scan work, for this to scale.
func BenchmarkRoundThroughput_n256(b *testing.B) {
	benchRoundThroughput(b, 256, 85)
}

// BenchmarkRoundThroughput_n1024 is the zero-copy-era scale point: ~1M
// messages per all-to-all round. At this n the per-message constant is
// everything — the pooled wire path exists so this row stays flat in
// allocs while quadrupling n over the n256 row.
func BenchmarkRoundThroughput_n1024(b *testing.B) {
	benchRoundThroughput(b, 1024, 341)
}

func benchRoundThroughput(b *testing.B, n, t int) {
	b.Helper()
	payload := make([]byte, 64)
	parties := make([]Party, n)
	rounds := b.N
	for i := range parties {
		parties[i] = Party{Behavior: func(env *Env) error {
			for r := 0; r < rounds; r++ {
				if _, err := env.ExchangeAll("bench", payload); err != nil {
					return err
				}
			}
			return nil
		}}
	}
	b.ResetTimer()
	if _, err := Run(Config{N: n, T: t, MaxRounds: rounds + 1}, parties); err != nil {
		b.Fatal(err)
	}
}
