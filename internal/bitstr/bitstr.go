// Package bitstr implements the exact-width binary representations of
// Section 2 of the paper ("Binary representations"): BITS_ℓ(v), VAL(BITS),
// MIN_ℓ(BITS), MAX_ℓ(BITS), prefix tests, bit- and block-range extraction,
// and concatenation.
//
// A String is a sequence of bits stored MSB-first. Bit indices in this
// package are 0-based (the paper uses 1-based indices; call sites translate).
// Strings are value types: all operations return fresh storage and never
// alias the receiver's backing array, so a String can be shared freely
// between goroutines once constructed.
package bitstr

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// String is an immutable bitstring of arbitrary length, packed MSB-first.
// The zero value is the empty bitstring.
type String struct {
	data []byte // ceil(n/8) bytes; bit i lives at data[i/8] bit (7 - i%8)
	n    int    // length in bits
}

// Errors returned by constructors and codecs in this package.
var (
	ErrNegative = errors.New("bitstr: negative value has no binary representation")
	ErrOverflow = errors.New("bitstr: value does not fit in the requested width")
	ErrRange    = errors.New("bitstr: bit range out of bounds")
	ErrCorrupt  = errors.New("bitstr: corrupt encoding")
)

// New returns the all-zero bitstring of n bits. n must be non-negative.
func New(n int) (String, error) {
	if n < 0 {
		return String{}, fmt.Errorf("bitstr: negative length %d", n)
	}
	return String{data: make([]byte, (n+7)/8), n: n}, nil
}

// FromBig returns BITS_ℓ(v): the width-bit representation of v, left-padded
// with zeroes. It fails if v is negative or does not fit in width bits.
func FromBig(v *big.Int, width int) (String, error) {
	if v.Sign() < 0 {
		return String{}, ErrNegative
	}
	if width < 0 {
		return String{}, fmt.Errorf("bitstr: negative width %d", width)
	}
	if v.BitLen() > width {
		return String{}, fmt.Errorf("%w: %d bits into width %d", ErrOverflow, v.BitLen(), width)
	}
	s := String{data: make([]byte, (width+7)/8), n: width}
	raw := v.Bytes() // big-endian, minimal
	// Right-align raw into the bit width: the value occupies the lowest
	// v.BitLen() bits, i.e. the rightmost bits of the string.
	for i, b := range raw {
		// Byte raw[i] covers value bits [8*(len(raw)-i)-8, 8*(len(raw)-i)).
		shift := uint(8 * (len(raw) - 1 - i))
		for k := 0; k < 8; k++ {
			if b>>(7-k)&1 == 1 {
				// Bit position from the right end of the value.
				fromRight := int(shift) + (7 - k)
				s.setBit(width-1-fromRight, 1)
			}
		}
	}
	return s, nil
}

// MustFromBig is FromBig for statically-known-safe arguments; it panics on
// error and exists only for tests and examples.
func MustFromBig(v *big.Int, width int) String {
	s, err := FromBig(v, width)
	if err != nil {
		panic(err)
	}
	return s
}

// FromBits builds a String from a slice of 0/1 values, MSB first.
func FromBits(bits []byte) (String, error) {
	s := String{data: make([]byte, (len(bits)+7)/8), n: len(bits)}
	for i, b := range bits {
		switch b {
		case 0:
		case 1:
			s.setBit(i, 1)
		default:
			return String{}, fmt.Errorf("bitstr: bit %d has non-binary value %d", i, b)
		}
	}
	return s, nil
}

// Parse builds a String from a textual form such as "0110". The empty string
// parses to the empty bitstring.
func Parse(text string) (String, error) {
	bits := make([]byte, len(text))
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '0':
			bits[i] = 0
		case '1':
			bits[i] = 1
		default:
			return String{}, fmt.Errorf("bitstr: invalid character %q at %d", text[i], i)
		}
	}
	return FromBits(bits)
}

// MustParse is Parse that panics on error; for tests and examples only.
func MustParse(text string) String {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *String) setBit(i int, b byte) {
	if b == 1 {
		s.data[i/8] |= 1 << uint(7-i%8)
	} else {
		s.data[i/8] &^= 1 << uint(7-i%8)
	}
}

// Len returns the length of the bitstring in bits (the paper's |BITS|).
func (s String) Len() int { return s.n }

// Bit returns the bit at 0-based position i (the paper's B_{i+1}).
func (s String) Bit(i int) byte {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstr: bit index %d out of range [0,%d)", i, s.n))
	}
	return s.data[i/8] >> uint(7-i%8) & 1
}

// Big returns VAL(BITS): the natural number whose binary representation the
// string is. The empty string has value 0.
func (s String) Big() *big.Int {
	v := new(big.Int)
	for i := 0; i < s.n; i++ {
		if s.Bit(i) == 1 {
			v.SetBit(v, s.n-1-i, 1)
		}
	}
	return v
}

// Slice returns the substring of bits [lo, hi) (0-based, half-open).
func (s String) Slice(lo, hi int) (String, error) {
	if lo < 0 || hi < lo || hi > s.n {
		return String{}, fmt.Errorf("%w: [%d,%d) of %d", ErrRange, lo, hi, s.n)
	}
	out := String{data: make([]byte, (hi-lo+7)/8), n: hi - lo}
	for i := lo; i < hi; i++ {
		if s.Bit(i) == 1 {
			out.setBit(i-lo, 1)
		}
	}
	return out, nil
}

// Prefix returns the first k bits of s.
func (s String) Prefix(k int) (String, error) { return s.Slice(0, k) }

// Concat returns s followed by t.
func (s String) Concat(t String) String {
	out := String{data: make([]byte, (s.n+t.n+7)/8), n: s.n + t.n}
	copy(out.data, s.data)
	if s.n%8 == 0 {
		copy(out.data[s.n/8:], t.data)
		return out
	}
	for i := 0; i < t.n; i++ {
		if t.Bit(i) == 1 {
			out.setBit(s.n+i, 1)
		}
	}
	return out
}

// AppendBit returns s with one extra bit b (0 or 1) appended.
func (s String) AppendBit(b byte) (String, error) {
	t, err := FromBits([]byte{b})
	if err != nil {
		return String{}, err
	}
	return s.Concat(t), nil
}

// Equal reports whether s and t are the same bitstring (same length, same
// bits).
func (s String) Equal(t String) bool {
	if s.n != t.n {
		return false
	}
	full := s.n / 8
	for i := 0; i < full; i++ {
		if s.data[i] != t.data[i] {
			return false
		}
	}
	for i := full * 8; i < s.n; i++ {
		if s.Bit(i) != t.Bit(i) {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is a prefix of s.
func (s String) HasPrefix(p String) bool {
	if p.n > s.n {
		return false
	}
	head, err := s.Prefix(p.n)
	if err != nil {
		return false
	}
	return head.Equal(p)
}

// Compare compares two equal-length bitstrings as the naturals they
// represent; it returns -1, 0, or +1. It panics if the lengths differ
// (callers in this codebase always compare like-for-like widths).
func (s String) Compare(t String) int {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: comparing lengths %d and %d", s.n, t.n))
	}
	for i := 0; i < s.n; i++ {
		a, b := s.Bit(i), t.Bit(i)
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// MinFill returns MIN_ℓ(BITS): the smallest width-bit value having s as a
// prefix (s padded on the right with zeroes). It fails if width < s.Len().
func (s String) MinFill(width int) (*big.Int, error) {
	if width < s.n {
		return nil, fmt.Errorf("%w: width %d < length %d", ErrRange, width, s.n)
	}
	v := s.Big()
	return v.Lsh(v, uint(width-s.n)), nil
}

// MaxFill returns MAX_ℓ(BITS): the largest width-bit value having s as a
// prefix (s padded on the right with ones). It fails if width < s.Len().
func (s String) MaxFill(width int) (*big.Int, error) {
	if width < s.n {
		return nil, fmt.Errorf("%w: width %d < length %d", ErrRange, width, s.n)
	}
	v := s.Big()
	v.Lsh(v, uint(width-s.n))
	pad := new(big.Int).Lsh(big.NewInt(1), uint(width-s.n))
	pad.Sub(pad, big.NewInt(1))
	return v.Or(v, pad), nil
}

// FillTo returns s extended to width bits by appending copies of bit b: the
// bitstring form of MIN_ℓ (b=0) or MAX_ℓ (b=1).
func (s String) FillTo(width int, b byte) (String, error) {
	if b > 1 {
		return String{}, fmt.Errorf("bitstr: non-binary fill bit %d", b)
	}
	if width < s.n {
		return String{}, fmt.Errorf("%w: width %d < length %d", ErrRange, width, s.n)
	}
	pad := make([]byte, width-s.n)
	for i := range pad {
		pad[i] = b
	}
	tail, err := FromBits(pad)
	if err != nil {
		return String{}, err
	}
	return s.Concat(tail), nil
}

// String renders the bitstring as text, e.g. "0101".
func (s String) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		b.WriteByte('0' + s.Bit(i))
	}
	return b.String()
}

// Marshal encodes the bitstring for the wire: 4-byte big-endian bit length
// followed by the packed bytes.
func (s String) Marshal() []byte {
	out := make([]byte, 4+len(s.data))
	out[0] = byte(s.n >> 24)
	out[1] = byte(s.n >> 16)
	out[2] = byte(s.n >> 8)
	out[3] = byte(s.n)
	copy(out[4:], s.data)
	return out
}

// Unmarshal decodes a bitstring produced by Marshal. It rejects malformed
// input (wrong byte count, nonzero padding bits) so that byzantine payloads
// can never yield an inconsistent String.
func Unmarshal(raw []byte) (String, error) {
	if len(raw) < 4 {
		return String{}, ErrCorrupt
	}
	n := int(raw[0])<<24 | int(raw[1])<<16 | int(raw[2])<<8 | int(raw[3])
	if n < 0 {
		return String{}, ErrCorrupt
	}
	body := raw[4:]
	if len(body) != (n+7)/8 {
		return String{}, ErrCorrupt
	}
	s := String{data: make([]byte, len(body)), n: n}
	copy(s.data, body)
	// Reject nonzero bits in the final partial byte so equal strings have
	// equal encodings.
	for i := n; i < 8*len(body); i++ {
		if s.data[i/8]>>uint(7-i%8)&1 == 1 {
			return String{}, ErrCorrupt
		}
	}
	return s, nil
}

// MarshalSize returns the encoded size in bytes of a bitstring of n bits.
func MarshalSize(n int) int { return 4 + (n+7)/8 }

// NatBitLen returns the paper's |BITS(v)| for v ∈ ℕ: the length of the
// minimal binary representation, with |BITS(0)| defined as 1.
func NatBitLen(v *big.Int) int {
	if v.Sign() == 0 {
		return 1
	}
	return v.BitLen()
}
