// Package asyncnet simulates the asynchronous network model that the
// paper's §8 names as the natural next setting for its techniques: n
// parties with authenticated channels, no clocks, and an adversary that
// fully controls message *scheduling* — every message is delivered
// eventually, but arbitrarily late and in arbitrary order.
//
// The simulator is quiescence-driven and single-threaded at its core:
// parties run as goroutines issuing Send (non-blocking) and Recv
// (blocking). Whenever every running party is blocked in Recv on an empty
// inbox, the configured Scheduler — the adversary — picks ONE pending
// message to deliver, and execution resumes. This gives the scheduler the
// full power of the asynchronous adversary (any interleaving consistent
// with eventual delivery is reachable) while keeping runs deterministic
// and reproducible from a seed.
//
// The asynchronous protocols built on top (package rbc, package asyncaa)
// are the substrate the paper's related work ([1], [16], [26]) assumes.
package asyncnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// PartyID identifies a party, 0..n-1.
type PartyID int

// Message is a delivered message with an authenticated sender.
type Message struct {
	From    PartyID
	Payload []byte
}

// pending is an undelivered message.
type pending struct {
	from, to  PartyID
	payload   []byte
	senderSeq uint64 // this sender's send counter: deterministic program order
}

// Scheduler chooses which pending message to deliver at each quiescent
// point: the asynchronous adversary. It returns an index into queue.
// Implementations must be deterministic given their own state.
type Scheduler interface {
	Pick(queue []QueuedMessage) int
}

// QueuedMessage is the scheduler's read-only view of a pending message.
type QueuedMessage struct {
	From, To PartyID
	Size     int
	Age      uint64 // deliveries since enqueue; grows as it languishes
}

// Behavior is the code one party runs.
type Behavior func(net *Net, id PartyID) error

// Party pairs a behavior with its corruption status. The run ends once
// every honest party has returned; corrupt parties still blocked in Recv
// then get ErrHalted.
type Party struct {
	Behavior Behavior
	Corrupt  bool
}

// Errors surfaced by the simulator.
var (
	// ErrDeadlock reports full quiescence with no pending messages: the
	// protocol is waiting for traffic that can never arrive.
	ErrDeadlock = errors.New("asyncnet: all parties blocked with no pending messages")
	// ErrBudget reports that the delivery budget was exhausted (a guard
	// against livelock in buggy protocols).
	ErrBudget = errors.New("asyncnet: delivery budget exhausted")
	// ErrHalted is returned from Recv once the run is over.
	ErrHalted = errors.New("asyncnet: run halted")
)

// Config parameterizes a run.
type Config struct {
	N int
	T int
	// Scheduler defaults to a seeded RandomScheduler.
	Scheduler Scheduler
	// Seed seeds the default scheduler.
	Seed int64
	// MaxDeliveries guards against livelock; 0 means a generous default.
	MaxDeliveries uint64
}

// DefaultMaxDeliveries bounds runs when Config.MaxDeliveries is zero.
const DefaultMaxDeliveries = 5_000_000

// Net is the shared simulated network.
type Net struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	inbox     [][]Message // delivered, per party (FIFO)
	queue     []pending
	running   []bool
	corrupt   []bool
	blocked   []bool
	nRunning  int
	nHonest   int
	nBlocked  int
	senderSeq []uint64 // per-sender send counters
	outputs   []bool   // MarkDone called
	nPendingH int      // honest parties that have not reached an output
	delivered uint64
	failed    error
	errs      []error
}

// Deliveries reports how many messages the scheduler has delivered so far
// (the async analogue of a round count, usable after Run returns).
func (n *Net) Deliveries() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Run executes the parties until every honest one returns, then halts the
// rest; per-party errors are returned, with honest failures joined into the
// second result (ErrHalted exits are clean).
func Run(cfg Config, parties []Party) ([]error, error) {
	if cfg.N <= 0 || len(parties) != cfg.N {
		return nil, fmt.Errorf("asyncnet: %d parties for n=%d", len(parties), cfg.N)
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewRandomScheduler(cfg.Seed)
	}
	if cfg.MaxDeliveries == 0 {
		cfg.MaxDeliveries = DefaultMaxDeliveries
	}
	net := &Net{
		cfg:       cfg,
		inbox:     make([][]Message, cfg.N),
		running:   make([]bool, cfg.N),
		corrupt:   make([]bool, cfg.N),
		blocked:   make([]bool, cfg.N),
		senderSeq: make([]uint64, cfg.N),
		outputs:   make([]bool, cfg.N),
		errs:      make([]error, cfg.N),
	}
	net.cond = sync.NewCond(&net.mu)
	for i, p := range parties {
		net.running[i] = true
		net.corrupt[i] = p.Corrupt
		net.nRunning++
		if !p.Corrupt {
			net.nHonest++
		}
	}
	if net.nHonest == 0 {
		return nil, errors.New("asyncnet: no honest parties")
	}
	net.nPendingH = net.nHonest
	var wg sync.WaitGroup
	wg.Add(cfg.N)
	for i := range parties {
		go func(id PartyID, b Behavior) {
			defer wg.Done()
			err := runBehavior(b, net, id)
			net.done(id, err)
		}(PartyID(i), parties[i].Behavior)
	}
	wg.Wait()
	net.mu.Lock()
	defer net.mu.Unlock()
	var joined []error
	if net.failed != nil && !errors.Is(net.failed, ErrHalted) {
		joined = append(joined, net.failed)
	}
	for i, err := range net.errs {
		if err != nil && !net.corrupt[i] && !errors.Is(err, ErrHalted) {
			joined = append(joined, fmt.Errorf("party %d: %w", i, err))
		}
	}
	return net.errs, errors.Join(joined...)
}

func runBehavior(b Behavior, net *Net, id PartyID) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("asyncnet: behavior panicked: %v", rec)
		}
	}()
	return b(net, id)
}

// N returns the party count.
func (n *Net) N() int { return n.cfg.N }

// T returns the corruption budget.
func (n *Net) T() int { return n.cfg.T }

// MarkDone signals that this party has produced its protocol output but —
// as asynchronous protocols require — will keep serving other parties'
// instances (echoing, relaying) until the whole run completes. Once every
// honest party has called MarkDone (or returned), the run halts and all
// pending Recv calls return ErrHalted. Calling it more than once, or from
// a corrupt party, is a no-op.
func (n *Net) MarkDone(id PartyID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.corrupt[id] || n.outputs[id] {
		return
	}
	n.outputs[id] = true
	n.nPendingH--
	if n.nPendingH == 0 && n.failed == nil {
		n.failed = ErrHalted
		n.cond.Broadcast()
	}
}

// Send enqueues a message; it never blocks. Sends to out-of-range parties
// are dropped.
func (n *Net) Send(from, to PartyID, payload []byte) {
	if to < 0 || int(to) >= n.cfg.N {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed != nil {
		return
	}
	n.senderSeq[from]++
	n.queue = append(n.queue, pending{from: from, to: to, payload: payload, senderSeq: n.senderSeq[from]})
}

// Broadcast sends payload to every party, including the sender.
func (n *Net) Broadcast(from PartyID, payload []byte) {
	for to := 0; to < n.cfg.N; to++ {
		n.Send(from, PartyID(to), payload)
	}
}

// Recv blocks until a message is delivered to id, performing adversarial
// scheduling whenever the whole system is quiescent.
func (n *Net) Recv(id PartyID) (Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.failed != nil {
			return Message{}, n.failed
		}
		if len(n.inbox[id]) > 0 {
			msg := n.inbox[id][0]
			n.inbox[id] = n.inbox[id][1:]
			return msg, nil
		}
		if !n.blocked[id] {
			n.blocked[id] = true
			n.nBlocked++
		}
		if n.nBlocked == n.nRunning {
			n.deliverOne()
			// deliverOne may have filled our inbox, failed the run, or
			// woken another party. If it woke nobody (the delivery went to
			// a finished party), keep driving the queue rather than
			// sleeping with no one left to wake us.
			if n.failed == nil && len(n.inbox[id]) == 0 && !n.anyRunningInbox() {
				continue
			}
			if n.failed == nil && len(n.inbox[id]) == 0 {
				n.cond.Wait()
			}
		} else {
			n.cond.Wait()
		}
		if n.blocked[id] {
			n.blocked[id] = false
			n.nBlocked--
		}
	}
}

// anyRunningInbox reports whether some running party has an unconsumed
// delivery (and will therefore wake and make progress). Caller holds n.mu.
func (n *Net) anyRunningInbox() bool {
	for id, running := range n.running {
		if running && len(n.inbox[id]) > 0 {
			return true
		}
	}
	return false
}

// deliverOne lets the scheduler pick a pending message and delivers it.
// Caller holds n.mu and has established quiescence (all running parties
// blocked in Recv).
func (n *Net) deliverOne() {
	if len(n.queue) == 0 {
		// True deadlock only if no blocked party still has an unprocessed
		// delivery (a woken recipient may not have run yet).
		if n.anyRunningInbox() {
			return
		}
		n.failed = ErrDeadlock
		n.cond.Broadcast()
		return
	}
	if n.delivered >= n.cfg.MaxDeliveries {
		n.failed = fmt.Errorf("%w (%d deliveries)", ErrBudget, n.delivered)
		n.cond.Broadcast()
		return
	}
	// Present the queue in a canonical order — (sender, sender's program
	// order, recipient) — so scheduler decisions, and hence entire runs,
	// are deterministic regardless of goroutine interleaving (the pending
	// multiset at each quiescent point is itself deterministic).
	perm := make([]int, len(n.queue))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := n.queue[perm[a]], n.queue[perm[b]]
		if pa.from != pb.from {
			return pa.from < pb.from
		}
		if pa.senderSeq != pb.senderSeq {
			return pa.senderSeq < pb.senderSeq
		}
		return pa.to < pb.to
	})
	view := make([]QueuedMessage, len(n.queue))
	for vi, qi := range perm {
		p := n.queue[qi]
		view[vi] = QueuedMessage{From: p.from, To: p.to, Size: len(p.payload), Age: n.senderSeq[p.from] - p.senderSeq}
	}
	pick := n.cfg.Scheduler.Pick(view)
	if pick < 0 || pick >= len(view) {
		pick = 0 // a misbehaving scheduler degrades to first-in-order
	}
	idx := perm[pick]
	p := n.queue[idx]
	n.queue = append(n.queue[:idx], n.queue[idx+1:]...)
	n.delivered++
	if n.running[p.to] {
		n.inbox[p.to] = append(n.inbox[p.to], Message{From: p.from, Payload: p.payload})
	}
	n.cond.Broadcast()
}

// done retires a party.
func (n *Net) done(id PartyID, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.errs[id] = err
	if !n.running[id] {
		return
	}
	n.running[id] = false
	n.nRunning--
	if !n.corrupt[id] {
		n.nHonest--
		if !n.outputs[id] {
			n.outputs[id] = true
			n.nPendingH--
		}
	}
	if n.blocked[id] {
		n.blocked[id] = false
		n.nBlocked--
	}
	n.inbox[id] = nil
	if n.nHonest == 0 || n.nPendingH == 0 {
		// Protocol over: release any parties still serving in Recv.
		if n.failed == nil {
			n.failed = ErrHalted
		}
	} else if n.nRunning > 0 && n.nBlocked == n.nRunning {
		n.deliverOne()
	}
	n.cond.Broadcast()
}

// RandomScheduler delivers a uniformly random pending message — the
// "benign chaos" baseline adversary.
type RandomScheduler struct {
	rng *rand.Rand
}

// NewRandomScheduler returns a seeded random scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(queue []QueuedMessage) int {
	return s.rng.Intn(len(queue))
}

// DelayScheduler starves the messages of chosen victim senders for as long
// as fairness allows: victims' messages are delivered only when nothing
// else is pending. This mimics the classic async attack of maximally
// delaying t specific (honest!) parties.
type DelayScheduler struct {
	victims map[PartyID]bool
	rng     *rand.Rand
}

// NewDelayScheduler builds a scheduler that starves the given senders.
func NewDelayScheduler(seed int64, victims ...PartyID) *DelayScheduler {
	m := make(map[PartyID]bool, len(victims))
	for _, v := range victims {
		m[v] = true
	}
	return &DelayScheduler{victims: m, rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (s *DelayScheduler) Pick(queue []QueuedMessage) int {
	nonVictim := make([]int, 0, len(queue))
	for i, q := range queue {
		if !s.victims[q.From] {
			nonVictim = append(nonVictim, i)
		}
	}
	if len(nonVictim) == 0 {
		return s.rng.Intn(len(queue))
	}
	return nonVictim[s.rng.Intn(len(nonVictim))]
}

// LIFOScheduler always delivers the newest message first — an adversary
// that maximizes reordering against FIFO assumptions. Note it can starve
// old messages indefinitely in non-quiescing protocols, so it is a
// strictly-stronger-than-eventual-delivery adversary; the protocols here
// quiesce every round, which restores eventual delivery.
type LIFOScheduler struct{}

// Pick implements Scheduler.
func (LIFOScheduler) Pick(queue []QueuedMessage) int { return len(queue) - 1 }
