package rs_test

import (
	"fmt"

	"convexagreement/internal/rs"
)

// A (7, 5) code: any 5 of the 7 shares reconstruct the payload — exactly
// the (n, n−t) parameters Π_ℓBA+ uses so that the n−t honest parties'
// shares always suffice.
func ExampleCodec() {
	codec, err := rs.NewCodec(7, 5)
	if err != nil {
		panic(err)
	}
	payload := []byte("the paper's long input value")
	shares, err := codec.Encode(payload)
	if err != nil {
		panic(err)
	}
	// Two shares lost (byzantine holders): decode from the remaining five.
	got, err := codec.Decode(shares[2:])
	if err != nil {
		panic(err)
	}
	fmt.Println(string(got))
	// Output: the paper's long input value
}
