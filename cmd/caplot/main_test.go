package main

import (
	"strings"
	"testing"

	"convexagreement/internal/experiments"
)

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"451", 451, true},
		{"11.33", 11.33, true},
		{"2.00x", 2, true},
		{"62%", 0.62, true},
		{"37.5KiB", 37.5 * 8192, true},
		{"1.0MiB", 8 * 1024 * 1024, true},
		{"96b", 96, true},
		{"-", 0, false},
		{"", 0, false},
		{"silent", 0, false},
		{"true", 0, false},
		{"12ab", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseCell(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseCell(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestRenderSyntheticTable(t *testing.T) {
	tbl := experiments.Table{
		ID:     "EX",
		Title:  "synthetic",
		Header: []string{"n", "bits", "label"},
		Rows: [][]string{
			{"4", "10.0KiB", "foo"},
			{"8", "40.0KiB", "bar"},
			{"16", "160.0KiB", "baz"},
		},
	}
	chart, err := render(tbl, "", nil, true, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "a = bits") {
		t.Errorf("legend missing:\n%s", chart)
	}
	if strings.Count(chart, "a") < 3 {
		t.Errorf("points missing:\n%s", chart)
	}
	// Explicit column selection and error paths.
	if _, err := render(tbl, "nope", nil, true, 40, 10); err == nil {
		t.Error("unknown x column accepted")
	}
	if _, err := render(tbl, "n", []string{"nope"}, true, 40, 10); err == nil {
		t.Error("unknown y column accepted")
	}
	if _, err := render(tbl, "n", []string{"bits"}, false, 40, 10); err != nil {
		t.Errorf("linear render failed: %v", err)
	}
	// A table with no numeric columns must error, not panic.
	empty := experiments.Table{ID: "E0", Header: []string{"a", "b"}, Rows: [][]string{{"x", "y"}}}
	if _, err := render(empty, "", nil, true, 40, 10); err == nil {
		t.Error("non-numeric table accepted")
	}
}

func TestColumnHelpers(t *testing.T) {
	if colIndex([]string{"n", "Bits"}, "bits") != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if colIndex([]string{"n"}, "x") != -1 {
		t.Error("missing column found")
	}
}
