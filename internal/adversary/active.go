package adversary

import (
	"math/rand"

	"convexagreement/internal/sim"
)

// Active resource-exhaustion strategies. Where the classic Catalog attacks
// protocol *logic* (equivocation, replay, mirroring), these attack the
// transport's *resources*: packet counts, byte volume, and burstiness. They
// are the simulator-level mirror of the raw-socket adversaries in
// internal/netattack, and feed the E19 active-adversary sweep.
//
// They live in ActiveCatalog, separate from Catalog, so the E10 golden
// transcripts over the classic sweep stay byte-stable.

// Flood sends copies identical well-formed packets of payloadLen seeded
// bytes to every party, every round — pure packet-count pressure, no
// rushing. Honest parties must dedup or shed it without losing each
// other's traffic.
func Flood(seed int64, copies, payloadLen int) sim.Behavior {
	return func(env *sim.Env) error {
		rng := rand.New(rand.NewSource(seed + int64(env.ID())))
		payload := make([]byte, payloadLen)
		for {
			rng.Read(payload)
			out := make([]sim.Packet, 0, copies*env.N())
			for to := 0; to < env.N(); to++ {
				for c := 0; c < copies; c++ {
					out = append(out, sim.Packet{To: sim.PartyID(to), Tag: tag, Payload: payload})
				}
			}
			if _, err := env.Exchange(out); err != nil {
				return err
			}
		}
	}
}

// Oversize sends every party one giant seeded payload of `bytes` bytes per
// round — byte-volume pressure. Decoders must refuse or absorb it by its
// size alone, never by crashing, and honest traffic must not be displaced.
func Oversize(seed int64, bytes int) sim.Behavior {
	return func(env *sim.Env) error {
		rng := rand.New(rand.NewSource(seed ^ 0x0ffe))
		for {
			big := make([]byte, bytes)
			rng.Read(big)
			out := make([]sim.Packet, 0, env.N())
			for to := 0; to < env.N(); to++ {
				out = append(out, sim.Packet{To: sim.PartyID(to), Tag: tag, Payload: big})
			}
			if _, err := env.Exchange(out); err != nil {
				return err
			}
		}
	}
}

// Burst stays silent for period-1 rounds, then fires a copies-deep garbage
// flood in one round, and repeats. It probes rate limiters that average
// over time: a bucket sized only for the mean admits the burst, one sized
// only for the burst starves steady traffic.
func Burst(seed int64, period, copies int) sim.Behavior {
	if period < 1 {
		period = 1
	}
	return func(env *sim.Env) error {
		rng := rand.New(rand.NewSource(seed * 131))
		for r := 0; ; r++ {
			if r%period != period-1 {
				if _, err := env.ExchangeNone(); err != nil {
					return err
				}
				continue
			}
			out := make([]sim.Packet, 0, copies*env.N())
			for to := 0; to < env.N(); to++ {
				for c := 0; c < copies; c++ {
					buf := make([]byte, rng.Intn(64)+1)
					rng.Read(buf)
					out = append(out, sim.Packet{To: sim.PartyID(to), Tag: tag, Payload: buf})
				}
			}
			if _, err := env.Exchange(out); err != nil {
				return err
			}
		}
	}
}

// ActiveCatalog returns the resource-exhaustion strategy sweep used by the
// E19 experiment and the ingress robustness tests. Kept separate from
// Catalog so the classic sweep's golden transcripts stay stable.
func ActiveCatalog() []Strategy {
	return []Strategy{
		{Name: "flood", Build: func(seed int64) sim.Behavior { return Flood(seed, 64, 24) }},
		{Name: "oversize", Build: func(seed int64) sim.Behavior { return Oversize(seed, 32<<10) }},
		{Name: "garbage-burst", Build: func(seed int64) sim.Behavior { return Burst(seed, 3, 128) }},
	}
}
