package convexagreement_test

import (
	"testing"

	ca "convexagreement"
)

func TestAgreeTimelineOption(t *testing.T) {
	inputs := ints(5, 9, 7, 6)
	res, err := ca.Agree(inputs, ca.Options{Timeline: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != res.Rounds {
		t.Fatalf("timeline has %d entries for %d rounds", len(res.Timeline), res.Rounds)
	}
	var sum int64
	for i, rs := range res.Timeline {
		if rs.Round != i {
			t.Fatalf("entry %d has round %d", i, rs.Round)
		}
		sum += rs.HonestBits
	}
	if sum != res.HonestBits {
		t.Fatalf("timeline sums to %d, report says %d", sum, res.HonestBits)
	}
	// Off by default.
	res2, err := ca.Agree(inputs, ca.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Timeline) != 0 {
		t.Error("timeline recorded without the option")
	}
	// Per-party load is exposed and sums to the total.
	var perParty int64
	for _, b := range res2.BitsByParty {
		perParty += b
	}
	if perParty != res2.HonestBits {
		t.Errorf("BitsByParty sums to %d, want %d", perParty, res2.HonestBits)
	}
}
