// Package bc implements synchronous Byzantine Broadcast (BC) for long
// messages — the primitive the paper's introduction uses as the strawman
// route to CA ("each party sends its input value via BC"), built in the
// extension-protocol style of the works it cites ([8], [41], [11], [28]):
// one dissemination round followed by Π_ℓBA+ on the received value, so a
// single ℓ-bit broadcast costs O(ℓn + κ·n²·log n) bits instead of the
// naive Θ(ℓn²).
//
// For n > 3t each instance guarantees:
//
//   - Validity: if the sender is honest, every honest party outputs the
//     sender's value (ok = true).
//   - Agreement: all honest parties output the same (value, ok) — a
//     byzantine sender can force ok = false or a value of its choice, but
//     never disagreement.
//   - Termination: every honest party outputs after a bounded number of
//     rounds.
package bc

import (
	"convexagreement/internal/baplus"
	"convexagreement/internal/transport"
	"convexagreement/internal/wire"
)

// Broadcast runs one BC instance. All honest parties must call it in the
// same round with the same tag and sender; value is the payload and is
// consulted only by the sender itself. The return is (value, true) when
// the broadcast delivered, (nil, false) when the (necessarily byzantine)
// sender failed to get any single value across.
func Broadcast(env transport.Net, tag string, sender transport.PartyID, value []byte) ([]byte, bool, error) {
	var out []transport.Packet
	if env.ID() == sender {
		out = transport.Broadcast(env, tag+"/bc-send", framePresent(value))
	}
	in, err := env.Exchange(out)
	if err != nil {
		return nil, false, err
	}
	frame := frameAbsent()
	for _, m := range in {
		if m.From == sender {
			frame = m.Payload
			break
		}
	}
	// Π_ℓBA+ turns the (possibly equivocated) per-party views into one
	// agreed frame: an honest sender hits Validity, a byzantine one hits
	// Agreement; Intrusion Tolerance keeps the result a frame some honest
	// party actually received.
	agreed, ok, err := baplus.Long(env, tag+"/bc-agree", frame)
	if err != nil || !ok {
		return nil, false, err
	}
	v, present := unframe(agreed)
	if !present {
		return nil, false, nil
	}
	return v, true, nil
}

// framePresent marks a received value: 0x01 || value.
func framePresent(v []byte) []byte {
	w := wire.NewWriter(1 + len(v))
	w.Byte(1)
	w.Raw(v)
	return w.Finish()
}

// frameAbsent marks "nothing received from the sender".
func frameAbsent() []byte { return []byte{0} }

// unframe splits a frame; present=false for the absent marker or garbage.
func unframe(raw []byte) ([]byte, bool) {
	if len(raw) < 1 || raw[0] != 1 {
		return nil, false
	}
	return raw[1:], true
}
