package faultnet_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"convexagreement/internal/channet"
	"convexagreement/internal/faultnet"
	"convexagreement/internal/transport"
)

// runCluster executes fns over a channet hub, each party's Net wrapped by
// wrap (identity when nil).
func runCluster(t *testing.T, n int, wrap func(transport.Net) transport.Net, fns []func(net transport.Net) error) {
	t.Helper()
	hub, err := channet.NewHub(n, (n-1)/3)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]func(net transport.Net) error, n)
	for i := range fns {
		fn := fns[i]
		wrapped[i] = func(net transport.Net) error {
			if wrap != nil {
				net = wrap(net)
			}
			return fn(net)
		}
	}
	if err := hub.Run(wrapped); err != nil {
		t.Fatal(err)
	}
}

// collect runs `rounds` all-to-all rounds at every party and returns each
// party's full inbox history.
func collect(t *testing.T, n, rounds int, wrap func(transport.Net) transport.Net) [][][]transport.Message {
	t.Helper()
	history := make([][][]transport.Message, n)
	fns := make([]func(net transport.Net) error, n)
	for i := 0; i < n; i++ {
		id := i
		fns[i] = func(net transport.Net) error {
			for r := 0; r < rounds; r++ {
				in, err := transport.ExchangeAll(net, "t", []byte{byte(id), byte(r), 0xAB})
				if err != nil {
					return err
				}
				history[id] = append(history[id], in)
			}
			return nil
		}
	}
	runCluster(t, n, wrap, fns)
	return history
}

// TestDisabledPlanIsByteIdenticalPassthrough is the golden test: with every
// fault disabled the wrapper must deliver exactly what the bare transport
// delivers, byte for byte.
func TestDisabledPlanIsByteIdenticalPassthrough(t *testing.T) {
	const n, rounds = 4, 5
	bare := collect(t, n, rounds, nil)
	wrapped := collect(t, n, rounds, func(net transport.Net) transport.Net {
		return faultnet.Wrap(net, &faultnet.Plan{Seed: 99})
	})
	for id := 0; id < n; id++ {
		if len(bare[id]) != len(wrapped[id]) {
			t.Fatalf("party %d: %d vs %d rounds", id, len(bare[id]), len(wrapped[id]))
		}
		for r := range bare[id] {
			if len(bare[id][r]) != len(wrapped[id][r]) {
				t.Fatalf("party %d round %d: %d vs %d messages", id, r, len(bare[id][r]), len(wrapped[id][r]))
			}
			for k := range bare[id][r] {
				b, w := bare[id][r][k], wrapped[id][r][k]
				if b.From != w.From || !bytes.Equal(b.Payload, w.Payload) {
					t.Fatalf("party %d round %d msg %d: %v != %v", id, r, k, b, w)
				}
			}
		}
	}
}

func TestDropAllSilencesLink(t *testing.T) {
	const n, rounds = 3, 4
	plan := &faultnet.Plan{Seed: 1, Rules: []faultnet.Rule{
		{Kind: faultnet.Drop, From: 0, To: faultnet.Any, Prob: 1},
	}}
	hist := collect(t, n, rounds, func(net transport.Net) transport.Net { return faultnet.Wrap(net, plan) })
	for id := 1; id < n; id++ {
		for r, in := range hist[id] {
			for _, m := range in {
				if m.From == 0 {
					t.Fatalf("party %d round %d still heard from 0", id, r)
				}
			}
		}
	}
	// Party 0 still hears itself (self-delivery exempt from link faults).
	for r, in := range hist[0] {
		self := 0
		for _, m := range in {
			if m.From == 0 {
				self++
			}
		}
		if self != 1 {
			t.Fatalf("party 0 round %d: %d self messages", r, self)
		}
	}
}

func TestDelaySlidesIntoLaterRound(t *testing.T) {
	const n, rounds = 3, 5
	plan := &faultnet.Plan{Seed: 7, Rules: []faultnet.Rule{
		{Kind: faultnet.Delay, From: 0, To: 1, Prob: 1, DelayRounds: 2},
	}}
	hist := collect(t, n, rounds, func(net transport.Net) transport.Net { return faultnet.Wrap(net, plan) })
	// Party 1's inbox: payloads from 0 must carry round stamps two behind
	// the round they arrive in.
	for r, in := range hist[1] {
		for _, m := range in {
			if m.From != 0 {
				continue
			}
			if int(m.Payload[1]) != r-2 {
				t.Fatalf("round %d: payload from 0 stamped %d, want %d", r, m.Payload[1], r-2)
			}
		}
	}
	// Party 2 gets 0's traffic undelayed.
	for r, in := range hist[2] {
		seen := false
		for _, m := range in {
			if m.From == 0 && int(m.Payload[1]) == r {
				seen = true
			}
		}
		if !seen {
			t.Fatalf("round %d: party 2 missing fresh payload from 0", r)
		}
	}
}

func TestDuplicateDoublesDelivery(t *testing.T) {
	const n, rounds = 3, 3
	plan := &faultnet.Plan{Seed: 3, Rules: []faultnet.Rule{
		{Kind: faultnet.Duplicate, From: 0, To: 2, Prob: 1},
	}}
	hist := collect(t, n, rounds, func(net transport.Net) transport.Net { return faultnet.Wrap(net, plan) })
	for r, in := range hist[2] {
		from0 := 0
		for _, m := range in {
			if m.From == 0 {
				from0++
			}
		}
		if from0 != 2 {
			t.Fatalf("round %d: %d copies from 0, want 2", r, from0)
		}
	}
}

func TestCorruptFlipsBytesNotOriginals(t *testing.T) {
	const n, rounds = 2, 3
	plan := &faultnet.Plan{Seed: 5, Rules: []faultnet.Rule{
		{Kind: faultnet.Corrupt, From: 0, To: 1, Prob: 1},
	}}
	hist := collect(t, n, rounds, func(net transport.Net) transport.Net { return faultnet.Wrap(net, plan) })
	for r, in := range hist[1] {
		for _, m := range in {
			if m.From != 0 {
				continue
			}
			want := []byte{0, byte(r), 0xAB}
			if bytes.Equal(m.Payload, want) {
				t.Fatalf("round %d: payload from 0 not corrupted", r)
			}
			if len(m.Payload) != len(want) {
				t.Fatalf("round %d: corruption changed length", r)
			}
		}
	}
	// Party 0's self-copy must be pristine: corruption works on a copy.
	for r, in := range hist[0] {
		for _, m := range in {
			if m.From == 0 && !bytes.Equal(m.Payload, []byte{0, byte(r), 0xAB}) {
				t.Fatalf("round %d: sender's own buffer corrupted", r)
			}
		}
	}
}

func TestPartitionCutsAndHeals(t *testing.T) {
	const n, rounds = 4, 6
	plan := &faultnet.Plan{Seed: 11, Partitions: []faultnet.Partition{
		{FromRound: 1, ToRound: 4, GroupA: []int{0, 1}},
	}}
	hist := collect(t, n, rounds, func(net transport.Net) transport.Net { return faultnet.Wrap(net, plan) })
	for r := 0; r < rounds; r++ {
		crossDelivered := false
		for _, m := range hist[2][r] {
			if m.From == 0 || m.From == 1 {
				crossDelivered = true
			}
		}
		cut := r >= 1 && r < 4
		if cut && crossDelivered {
			t.Fatalf("round %d: partition leaked", r)
		}
		if !cut && !crossDelivered {
			t.Fatalf("round %d: healed partition still cut", r)
		}
		// Same-side traffic always flows.
		sameSide := false
		for _, m := range hist[0][r] {
			if m.From == 1 {
				sameSide = true
			}
		}
		if !sameSide {
			t.Fatalf("round %d: same-side link cut", r)
		}
	}
}

func TestCrashWindowSilencesAndRestarts(t *testing.T) {
	const n, rounds = 3, 6
	plan := &faultnet.Plan{Seed: 13, Crashes: []faultnet.Crash{
		{Party: 1, FromRound: 2, ToRound: 4},
	}}
	hist := collect(t, n, rounds, func(net transport.Net) transport.Net { return faultnet.Wrap(net, plan) })
	for r := 0; r < rounds; r++ {
		heard := false
		for _, m := range hist[0][r] {
			if m.From == 1 {
				heard = true
			}
		}
		inWindow := r >= 2 && r < 4
		if inWindow && heard {
			t.Fatalf("round %d: crashed party still sending", r)
		}
		if !inWindow && !heard {
			t.Fatalf("round %d: restarted party silent", r)
		}
		// The crashed party receives nothing during the window.
		if inWindow && len(hist[1][r]) != 0 {
			t.Fatalf("round %d: crashed party received %d messages", r, len(hist[1][r]))
		}
		if !inWindow && len(hist[1][r]) == 0 {
			t.Fatalf("round %d: restarted party received nothing", r)
		}
	}
}

func TestRoundLimitSurfacesAsError(t *testing.T) {
	hub, err := channet.NewHub(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faultnet.Plan{MaxRounds: 3}
	fns := make([]func(net transport.Net) error, 2)
	for i := range fns {
		fns[i] = func(net transport.Net) error {
			f := faultnet.Wrap(net, plan)
			for r := 0; ; r++ {
				if _, err := transport.ExchangeAll(f, "x", []byte{1}); err != nil {
					if !errors.Is(err, faultnet.ErrRoundLimit) {
						return fmt.Errorf("round %d: %w", r, err)
					}
					if r != 3 {
						return fmt.Errorf("limit hit at round %d, want 3", r)
					}
					return nil
				}
			}
		}
	}
	if err := hub.Run(fns); err != nil {
		t.Fatal(err)
	}
}

// TestSeedDeterminism: identical plans and seeds reproduce identical
// transcripts at every party; a different seed lands differently.
func TestSeedDeterminism(t *testing.T) {
	run := func(seed int64) []uint64 {
		const n, rounds = 4, 6
		digests := make([]uint64, n)
		plan := &faultnet.Plan{Seed: seed, Rules: []faultnet.Rule{
			{Kind: faultnet.Drop, From: faultnet.Any, To: faultnet.Any, Prob: 0.3},
			{Kind: faultnet.Corrupt, From: 2, To: faultnet.Any, Prob: 0.5},
			{Kind: faultnet.Delay, From: 1, To: faultnet.Any, Prob: 0.4},
		}}
		fns := make([]func(net transport.Net) error, n)
		for i := 0; i < n; i++ {
			id := i
			fns[i] = func(net transport.Net) error {
				f := faultnet.Wrap(net, plan)
				for r := 0; r < rounds; r++ {
					if _, err := transport.ExchangeAll(f, "d", []byte{byte(id), byte(r)}); err != nil {
						return err
					}
				}
				digests[id] = f.Transcript()
				return nil
			}
		}
		runCluster(t, n, nil, fns)
		return digests
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("party %d: same seed, transcripts %x != %x", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestScenarioCatalogBuildsValidPlans(t *testing.T) {
	scenarios := faultnet.Scenarios()
	if len(scenarios) < 6 {
		t.Fatalf("only %d scenarios", len(scenarios))
	}
	seen := map[string]bool{}
	for _, sc := range scenarios {
		if sc.Name == "" || sc.Build == nil {
			t.Fatalf("incomplete scenario %+v", sc)
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		plan := sc.Build(7, []int{1, 5}, 9)
		if plan == nil {
			t.Fatalf("%s: nil plan", sc.Name)
		}
		if len(plan.Rules) == 0 && len(plan.Partitions) == 0 && len(plan.Crashes) == 0 {
			t.Fatalf("%s: empty plan", sc.Name)
		}
	}
	for _, want := range []string{"drop", "delay", "duplicate", "corrupt", "partition-heal", "crash-restart"} {
		if !seen[want] {
			t.Fatalf("scenario %q missing", want)
		}
	}
}

// fakeNet is a minimal inner transport for unit-testing wrapper logic
// without a hub: Exchange loops back self-addressed packets.
type fakeNet struct {
	id, n, t  int
	exchanges int
}

func (f *fakeNet) ID() transport.PartyID { return transport.PartyID(f.id) }
func (f *fakeNet) N() int                { return f.n }
func (f *fakeNet) T() int                { return f.t }
func (f *fakeNet) Exchange(out []transport.Packet) ([]transport.Message, error) {
	f.exchanges++
	var in []transport.Message
	for _, p := range out {
		if int(p.To) == f.id {
			in = append(in, transport.Message{From: p.To, Payload: p.Payload})
		}
	}
	return in, nil
}

func TestKillFiresOnceBeforeInnerExchange(t *testing.T) {
	inner := &fakeNet{id: 2, n: 4, t: 1}
	plan := &faultnet.Plan{Kills: []faultnet.Kill{{Party: 2, Round: 3}}}
	net := faultnet.Wrap(inner, plan)
	for r := 0; r < 3; r++ {
		if _, err := net.Exchange(nil); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	if _, err := net.Exchange(nil); !errors.Is(err, faultnet.ErrKilled) {
		t.Fatalf("round 3: err = %v, want ErrKilled", err)
	}
	if inner.exchanges != 3 {
		t.Errorf("inner saw %d exchanges, want 3 (kill fires before the inner call)", inner.exchanges)
	}
	if net.Round() != 3 {
		t.Errorf("round after kill = %d, want 3 (the killed round never completed)", net.Round())
	}
	// The kill is one-shot on this wrapper: a retry on the SAME wrapper
	// proceeds (in-process resume over a live connection).
	if _, err := net.Exchange(nil); err != nil {
		t.Fatalf("retry after kill: %v", err)
	}
	if net.Round() != 4 {
		t.Errorf("round after retry = %d, want 4", net.Round())
	}
}

func TestKillOtherPartyUnaffected(t *testing.T) {
	inner := &fakeNet{id: 0, n: 4, t: 1}
	plan := &faultnet.Plan{Kills: []faultnet.Kill{{Party: 2, Round: 1}}}
	net := faultnet.Wrap(inner, plan)
	for r := 0; r < 4; r++ {
		if _, err := net.Exchange(nil); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
}

func TestWrapAtConsumesEarlierKills(t *testing.T) {
	plan := &faultnet.Plan{Kills: []faultnet.Kill{
		{Party: 1, Round: 2},
		{Party: 1, Round: 5},
	}}
	// Restart at round 2 — exactly where the first kill struck. That kill
	// must be consumed (it is what put us here); the later one still fires.
	net := faultnet.WrapAt(&fakeNet{id: 1, n: 4, t: 1}, plan, 2)
	if got := net.Round(); got != 2 {
		t.Fatalf("resumed round = %d, want 2", got)
	}
	for r := 2; r < 5; r++ {
		if _, err := net.Exchange(nil); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	if _, err := net.Exchange(nil); !errors.Is(err, faultnet.ErrKilled) {
		t.Fatalf("round 5: err = %v, want ErrKilled", err)
	}
}

func TestKillInClusterOthersFinish(t *testing.T) {
	// Party 3 is killed at round 2; the remaining parties must still close
	// their rounds (the hub retires the leaver) and finish 6 rounds.
	n := 4
	plan := &faultnet.Plan{Kills: []faultnet.Kill{{Party: 3, Round: 2}}}
	fns := make([]func(net transport.Net) error, n)
	for i := 0; i < n; i++ {
		id := i
		fns[i] = func(net transport.Net) error {
			for r := 0; r < 6; r++ {
				_, err := transport.ExchangeAll(net, "t", []byte{byte(id), byte(r)})
				if id == 3 && r == 2 {
					if !errors.Is(err, faultnet.ErrKilled) {
						return fmt.Errorf("party 3 round 2: err = %v, want ErrKilled", err)
					}
					return nil
				}
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	runCluster(t, n, func(inner transport.Net) transport.Net {
		return faultnet.Wrap(inner, plan)
	}, fns)
}
