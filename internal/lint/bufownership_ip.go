package lint

// bufownership-ip lifts the pooled-frame Release contract of
// internal/wire across call boundaries. The per-package bufownership
// check sees `f.Release(); use(f)` inside one body; it is blind to
// `send(f); use(f)` where send's own body does the Release, and to
// `stash(f); f.Release()` where stash stored the frame in a queue and
// the draining goroutine owns the Release. Both shapes corrupt the
// pool: the first is a use-after-free analog, the second a double free
// landing on whichever party loses the race.
//
// The function summaries classify each *wire.Frame parameter (transitively,
// to fixpoint): Release Always / Maybe / Never, plus Retains when the
// callee stores the frame in a field, container, or channel — an
// ownership transfer. This check replays each caller body through the
// same flow-approximate interpreter as bufownership, but the events are
// call sites instead of direct Release calls: a static call passing a
// frame to an always-releasing parameter retires the frame; a call
// passing it to a retaining parameter transfers ownership. Later uses
// and later Releases of a retired or transferred frame are findings.
// Maybe-release parameters are tracked but not reported — the caller
// usually guards the second touch with the same condition the callee
// used, which a flow-insensitive summary cannot see. Only call-induced
// states are reported here; direct Release misuse stays with the
// per-package check so no finding appears twice.

import (
	"go/ast"
	"go/token"
)

var bufownershipIPAnalyzer = &Analyzer{
	Name:      "bufownership-ip",
	Doc:       "pooled wire.Frame used or released after a callee consumed it",
	RunGlobal: runBufownershipIP,
	Contract: "A *wire.Frame passed to a function whose summary says the parameter is always " +
		"released (directly or through its own callees, computed to fixpoint) is retired at the " +
		"call: any later use or Release in the caller is a finding. A frame passed to a retaining " +
		"parameter (stored in a field, container, or channel) changes owner: the caller must not " +
		"Release it afterwards. Reassigning the variable starts a fresh frame; goroutine and " +
		"closure bodies are analyzed with fresh state; maybe-release parameters are tracked but " +
		"not reported.",
	Example: `internal/tcpnet/tcpnet.go:412:2: bufownership-ip: frame fr released after ownership moved to (*Conn).bufferTail at line 407; the retaining side releases it — releasing here double-frees the pooled buffer`,
}

// ipFact records why a frame key is no longer the caller's to touch.
type ipFact struct {
	pos         token.Pos // the call that changed ownership
	callee      string
	transferred bool // Retains (stored) rather than released
}

type ipState map[string]ipFact

func (s ipState) clone() ipState {
	c := make(ipState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func runBufownershipIP(pr *Program) {
	pr.ensureSummaries()
	for _, fi := range pr.infos {
		w := &ipWalker{pr: pr, fi: fi, sites: map[*ast.CallExpr]*CallSite{}}
		for i := range fi.Calls {
			w.sites[fi.Calls[i].Call] = &fi.Calls[i]
		}
		w.stmts(fi.Decl.Body.List, ipState{}, ipState{})
	}
}

type ipWalker struct {
	pr    *Program
	fi    *FuncInfo
	sites map[*ast.CallExpr]*CallSite
}

func (w *ipWalker) stmts(list []ast.Stmt, state, deferred ipState) {
	for _, stmt := range list {
		w.stmt(stmt, state, deferred)
	}
}

func (w *ipWalker) stmt(stmt ast.Stmt, state, deferred ipState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, _, ok := frameReleaseOp(w.fi.Pass, s.X); ok {
			w.checkRelease(s.X, state, deferred)
			delete(state, key) // one report per retired frame, not a cascade
			return
		}
		w.checkUse(s.X, state)
		w.applyCalls(s.X, state)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkUse(e, state)
			w.applyCalls(e, state)
		}
		// A fresh frame bound to the name: earlier ownership facts about
		// the old frame no longer describe it.
		for _, e := range s.Lhs {
			delete(state, exprKey(e))
			delete(deferred, exprKey(e))
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkUse(e, state)
		}
	case *ast.DeferStmt:
		if key, _, ok := frameReleaseOp(w.fi.Pass, s.Call); ok {
			w.checkRelease(s.Call, state, deferred)
			delete(state, key)
			return
		}
		for _, arg := range s.Call.Args {
			w.checkUse(arg, state)
		}
		w.applyDeferredCall(s.Call, state, deferred)
	case *ast.GoStmt:
		// The spawned body runs with fresh state (analyzed via its own
		// FuncInfo or not at all); only the handoff itself is checked.
		for _, arg := range s.Call.Args {
			w.checkUse(arg, state)
		}
		w.applyCalls(s.Call, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkUse(e, state)
						w.applyCalls(e, state)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.checkUse(s.Value, state)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, state, deferred)
	case *ast.BlockStmt:
		w.stmts(s.List, state, deferred)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, state, deferred)
		}
		w.checkUse(s.Cond, state)
		w.stmts(s.Body.List, state.clone(), deferred.clone())
		if s.Else != nil {
			w.stmt(s.Else, state.clone(), deferred.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, state, deferred)
		}
		if s.Cond != nil {
			w.checkUse(s.Cond, state)
		}
		w.stmts(s.Body.List, state.clone(), deferred.clone())
	case *ast.RangeStmt:
		w.checkUse(s.X, state)
		w.stmts(s.Body.List, state.clone(), deferred.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, state, deferred)
		}
		if s.Tag != nil {
			w.checkUse(s.Tag, state)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, state.clone(), deferred.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, state.clone(), deferred.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, state.clone(), deferred.clone())
			}
		}
	}
}

// applyCalls records the ownership effect of every static call in expr
// whose callee summary assigns a frame parameter an Always release or a
// Retains transfer.
func (w *ipWalker) applyCalls(expr ast.Expr, state ipState) {
	w.eachFrameEffect(expr, func(key string, call *ast.CallExpr, callee *FuncInfo, eff FrameEffect) {
		switch {
		case eff.Retains:
			state[key] = ipFact{pos: call.Pos(), callee: displayName(callee.Fn), transferred: true}
		case eff.Release == ReleaseAlways:
			state[key] = ipFact{pos: call.Pos(), callee: displayName(callee.Fn)}
		}
	})
}

// applyDeferredCall handles `defer g(f)` for an always-releasing g: the
// release fires at function exit, so later sequential uses stay legal
// but any other Release of the frame is a double release.
func (w *ipWalker) applyDeferredCall(call *ast.CallExpr, state, deferred ipState) {
	w.eachFrameEffect(call, func(key string, c *ast.CallExpr, callee *FuncInfo, eff FrameEffect) {
		if eff.Release == ReleaseAlways && !eff.Retains {
			deferred[key] = ipFact{pos: c.Pos(), callee: displayName(callee.Fn)}
		}
	})
}

// eachFrameEffect visits every (frame argument, callee effect) pair of
// the static single-callee calls inside expr, in lexical order. Function
// literals are skipped: their bodies run elsewhere with fresh state.
func (w *ipWalker) eachFrameEffect(expr ast.Expr, visit func(key string, call *ast.CallExpr, callee *FuncInfo, eff FrameEffect)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs := w.sites[call]
		if cs == nil || cs.Iface || len(cs.Callees) != 1 {
			return true
		}
		callee := cs.Callees[0]
		if len(callee.Sum.FrameParams) == 0 {
			return true
		}
		for i, arg := range call.Args {
			eff, ok := callee.Sum.FrameParams[i]
			if !ok {
				continue
			}
			a := ast.Unparen(arg)
			switch a.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				continue
			}
			if !isFramePtr(w.fi.Pass, arg) {
				continue
			}
			visit(exprKey(a), call, callee, eff)
		}
		return true
	})
}

// checkRelease reports a direct Release (or deferred Release) of a frame
// a callee already consumed.
func (w *ipWalker) checkRelease(expr ast.Expr, state, deferred ipState) {
	key, pos, ok := frameReleaseOp(w.fi.Pass, expr)
	if !ok {
		return
	}
	p := w.fi.Pass
	if fact, hit := state[key]; hit {
		if fact.transferred {
			w.pr.Reportf(p, pos,
				"frame %s released after ownership moved to %s at line %d; the retaining side releases it — releasing here double-frees the pooled buffer",
				key, fact.callee, p.Fset.Position(fact.pos).Line)
		} else {
			w.pr.Reportf(p, pos,
				"frame %s released twice: %s already released it at line %d; the second Release panics and would poison the pool",
				key, fact.callee, p.Fset.Position(fact.pos).Line)
		}
		return
	}
	if fact, hit := deferred[key]; hit {
		w.pr.Reportf(p, pos,
			"frame %s released twice: deferred call to %s at line %d also releases it; the second Release panics and would poison the pool",
			key, fact.callee, p.Fset.Position(fact.pos).Line)
	}
}

// checkUse reports any appearance of a consumed frame inside expr. The
// call currently being applied has not updated state yet, so its own
// arguments are never self-flagged.
func (w *ipWalker) checkUse(expr ast.Expr, state ipState) {
	if len(state) == 0 || expr == nil {
		return
	}
	p := w.fi.Pass
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		fact, hit := state[exprKey(e)]
		if !hit {
			return true
		}
		if fact.transferred {
			// Reads of a transferred frame are the new owner's race to
			// lose, not a pool-corruption bug; only Release is reported
			// (in checkRelease).
			return false
		}
		w.pr.Reportf(p, e.Pos(),
			"frame %s used after %s released it at line %d; the pooled buffer may already be reused — copy what you need before the handoff",
			exprKey(e), fact.callee, p.Fset.Position(fact.pos).Line)
		return false
	})
}
