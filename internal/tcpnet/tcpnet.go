// Package tcpnet implements the synchronous network abstraction
// (transport.Net) over real TCP connections, so every protocol in this
// library runs unchanged across processes and machines.
//
// The paper's synchronous model (§2) assumes authenticated channels and a
// publicly known message-delay bound Δ. This transport realizes it the way
// deployed synchronous protocols do: the n parties form a full mesh of TCP
// connections (the connection itself standing in for the model's
// authenticated channel), every party sends every peer exactly one frame
// per round (possibly empty), and a round closes when frames for it have
// arrived from all peers or after the Δ timeout — a peer that misses Δ is
// treated as silent for that round, exactly the adversary's omission power.
//
// Links degrade gracefully rather than fail the run. Each pairwise link is
// a small state machine (up → down → up, or → silent):
//
//   - An I/O failure (reset, idle timeout derived from Δ, write error) marks
//     the link down. Down peers stop being waited for, so rounds keep
//     closing at full speed. The dialing side (the party with the higher
//     id) re-dials with bounded exponential backoff plus jitter and
//     re-handshakes; the accepting side keeps its listener open for the
//     whole run and re-accepts. A restored link resumes at the current
//     round — the outage reads as omission, never corruption.
//   - A protocol violation (garbled or oversized frame, wire.ErrFrame)
//     marks the peer silent for the rest of the run: a peer that speaks
//     nonsense is misbehaving, not unlucky, and reconnecting to it would
//     hand it another chance to wedge the round loop. Silent peers are
//     reported by Faulty.
//
// There is no cost accounting here (BITS/ROUNDS measurements live in the
// simulator); this transport exists to demonstrate and test deployment.
package tcpnet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"convexagreement/internal/transport"
	"convexagreement/internal/wire"
)

// Config describes one party's view of the cluster.
type Config struct {
	// ID is this party's index into Addrs.
	ID int
	// Addrs lists all n parties' listen addresses, in party order.
	Addrs []string
	// T is the corruption budget handed to protocols (t < n/3).
	T int
	// Delta is the synchrony bound: how long Exchange waits for the
	// round's frames before declaring missing peers silent. Default 2s.
	Delta time.Duration
	// DialTimeout bounds mesh establishment. Default 10s.
	DialTimeout time.Duration
	// ReconnectAttempts bounds how many times the dialing side re-dials a
	// broken link before demoting the peer to silent for the run.
	// 0 means the default (5); negative disables reconnection.
	ReconnectAttempts int
	// ReconnectBase is the first reconnect backoff; it doubles per
	// attempt with up to +100% jitter. Default 50ms.
	ReconnectBase time.Duration
	// Listener optionally supplies a pre-bound listener for Addrs[ID]
	// (tests bind port 0 first and pass the resolved listener in). The
	// listener stays open for the lifetime of the Conn — re-handshakes
	// after a link failure arrive on it — and is closed by Conn.Close.
	Listener net.Listener
	// ResumeRound is the absolute round this party starts at — zero for a
	// fresh party, the checkpointed next round for one rejoining the mesh
	// after a crash. The handshake announces it to every peer, which
	// replays its buffered outbox tail for the gap (or demotes the party
	// to silent when the gap exceeds its RejoinWindow).
	ResumeRound uint64
	// RejoinWindow is how many recent rounds of outgoing frames each
	// party buffers per peer to serve rejoin replays. 0 means the default
	// (128); negative disables buffering (rejoining peers with any gap
	// are demoted to silent).
	RejoinWindow int
	// BorrowedReads selects the zero-copy receive path: inbound frames are
	// decoded into pooled buffers (wire.Arena.ReadFrameInto) and the
	// message payloads Exchange returns alias those buffers. The payloads
	// are valid until the NEXT Exchange (or Close) call on this Conn, at
	// which point the buffers return to the pool and their bytes are
	// reused; a caller that retains a payload across rounds must copy it
	// first. The default (false) copies every payload and imposes no
	// lifetime rules — it is also the differential oracle for the
	// borrowing decoder, so both paths always parse identically.
	BorrowedReads bool
	// Budget bounds what each peer may send this party: per-frame bytes
	// plus a round-clock token bucket over frames and bytes, enforced
	// before any pooled-buffer allocation (see wire.Budget). nil applies
	// wire.DefaultBudget(maxFrame, RejoinWindow) — the structural frame
	// bound with burst capacity covering a full rejoin replay. A peer that
	// exceeds its budget is demoted to Faulty() with a structured reason
	// (Stats.Demotions).
	Budget *wire.Budget
	// HelloBurst caps handshake attempts per remote host for the lifetime
	// of this Conn, so an unauthenticated dialer cannot churn the accept
	// path for free. 0 means the default (64 + 8n, generous because every
	// local test shares one host); negative disables the cap.
	HelloBurst int
	// RoundHorizon bounds how many rounds ahead of this party's current
	// round an inbound frame may be buffered; frames beyond it are dropped
	// (not a demotion — an honest fast peer can legitimately run ahead of
	// a stalled party, but unbounded buffering would let a hostile one
	// park frames at absurd round numbers forever). 0 means the default
	// (RejoinWindow + 64); negative disables the bound.
	RoundHorizon int
}

// Errors returned by the transport.
var (
	ErrClosed = errors.New("tcpnet: connection closed")
	ErrConfig = errors.New("tcpnet: invalid config")
)

// maxFrame bounds a single round frame from one peer (64 MiB).
const maxFrame = 64 << 20

// helloMaxBytes bounds the pre-handshake hello read: two uvarints (id,
// round) encode in at most 20 bytes, and an unauthenticated dialer gets
// not one byte more — the structural maxFrame limit is for peers that
// have already identified themselves.
const helloMaxBytes = 24

// maxHelloRound rejects absurd round announcements in a hello the same way
// absurd ids are rejected: an honest resume round is bounded by real
// execution history, so the top bits being set means a hostile dialer is
// probing the rejoin-replay machinery.
const maxHelloRound = 1 << 62

// linkState tracks one pairwise connection's health.
type linkState uint8

const (
	linkDown   linkState = iota // not (or no longer) connected; reconnect may restore it
	linkUp                      // connected, counted toward round quorum
	linkSilent                  // demoted for the run (violation or exhausted retries)
)

// link is one peer's connection slot. All fields are guarded by Conn.mu.
// gen increments every time conn is replaced or torn down, so goroutines
// holding an old conn recognize their view is stale and stand down.
type link struct {
	conn         net.Conn
	state        linkState
	gen          uint64
	reconnecting bool
}

// inboxEntry is one peer's delivery for one round: the decoded messages
// plus, in borrowed mode, the pooled frame their payloads alias. The frame
// stays live while the entry sits in the inbox and through the Exchange
// that delivers it; the next Exchange releases it (see Config.BorrowedReads
// for the caller-facing contract).
type inboxEntry struct {
	msgs  []transport.Message
	frame *wire.Frame
}

// Demotion records one peer's demotion to silent: who, why (the
// structured ingress verdict), and at which local round it happened.
type Demotion struct {
	Peer   int
	Reason wire.Reason
	Round  uint64
}

// PeerStats is one peer's ingress accounting: the admission counters
// (frames/bytes admitted, frames rejected) plus its demotion reason —
// wire.ReasonNone while the peer is live.
type PeerStats struct {
	Peer int
	wire.AdmissionCounters
	Demoted wire.Reason
}

// Stats are cumulative counters. Writes counts write syscalls issued (each
// a single vectored writev via net.Buffers); FramesSent counts encoded
// round frames shipped, replayed frames included — the ratio is the
// batching win: a rejoin replay of G rounds is one write, not G. The
// ingress side reports hellos refused by the per-host handshake cap,
// frames dropped beyond the round horizon, every demotion with its
// structured reason, and per-peer admission counters; Demotions and Peers
// are sorted by party id.
type Stats struct {
	FramesSent     uint64
	Writes         uint64
	BytesSent      uint64
	HellosRejected uint64
	FramesDropped  uint64
	Demotions      []Demotion
	Peers          []PeerStats
}

// Conn is one party's handle to the TCP mesh. It implements transport.Net.
type Conn struct {
	cfg Config
	n   int

	mu      sync.Mutex
	cond    *sync.Cond
	links   []link // indexed by party id; own id unused
	inbound map[net.Conn]struct{}
	byRound map[uint64]map[int]inboxEntry
	round   uint64
	closed  bool
	// tails buffers the last RejoinWindow encoded round frames per peer so
	// a rejoining peer's gap can be replayed; indexed by party id. The
	// tail map owns its frames: eviction releases them. Close drops the
	// maps without releasing — an in-flight write may still be reading a
	// tail frame's bytes, and on teardown the GC is the safe reclaimer.
	tails []map[uint64]*wire.Frame
	// spent holds the pooled frames whose payloads the previous Exchange
	// handed to the caller (borrowed mode); the next Exchange releases
	// them, which is exactly the documented payload lifetime.
	spent []*wire.Frame
	// frontier is the highest round any peer has announced in a handshake —
	// how far ahead the mesh was when this (possibly resumed) party joined.
	frontier uint64
	// demotions records every peer demoted to silent with its structured
	// reason, in demotion order (Stats returns them sorted by peer).
	demotions []Demotion
	// helloCount counts handshake attempts per remote host so HelloBurst
	// can refuse churn from an unauthenticated dialer.
	helloCount map[string]int

	// adm is the per-peer ingress gate (indexed by party id; own id nil).
	// It lives on the Conn, not the read loop, so budgets persist across
	// reconnects — otherwise handshake churn would reset them, which is
	// exactly the attack.
	adm []*wire.Admission
	// roundNow mirrors c.round for the read loops' admission Advance
	// calls, which must not take c.mu on the per-frame fast path.
	roundNow atomic.Uint64

	// arena pools frame buffers for the whole Conn: encode side (outgoing
	// round frames, replay batches) and, in borrowed mode, decode side.
	arena wire.Arena
	// wmu serializes writers on one socket (the live round send vs a rejoin
	// replay batch) so frames can never interleave mid-stream; indexed by
	// party id. Leaf mutex: nothing but the deadline-bounded write happens
	// under it, and Close unblocks the write by closing the conn.
	wmu []sync.Mutex
	// vec is the Exchange goroutine's scratch scatter-gather vector,
	// rebuilt per peer per round so the steady state allocates nothing.
	vec net.Buffers

	framesSent     atomic.Uint64
	writes         atomic.Uint64
	bytesSent      atomic.Uint64
	hellosRejected atomic.Uint64
	framesDropped  atomic.Uint64

	listener net.Listener
	done     chan struct{}
	wg       sync.WaitGroup
}

var _ transport.Net = (*Conn)(nil)

// Dial establishes the full mesh and returns when every pairwise connection
// is up. Every party must call Dial with a consistent Config; party i
// accepts connections from parties j > i and dials parties j < i.
func Dial(cfg Config) (*Conn, error) {
	n := len(cfg.Addrs)
	if n == 0 || cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("%w: id %d of %d addrs", ErrConfig, cfg.ID, n)
	}
	if cfg.T < 0 || (n > 1 && cfg.T >= n) {
		return nil, fmt.Errorf("%w: t=%d for n=%d", ErrConfig, cfg.T, n)
	}
	if cfg.Delta == 0 {
		cfg.Delta = 2 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	switch {
	case cfg.ReconnectAttempts == 0:
		cfg.ReconnectAttempts = 5
	case cfg.ReconnectAttempts < 0:
		cfg.ReconnectAttempts = 0
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = 50 * time.Millisecond
	}
	switch {
	case cfg.RejoinWindow == 0:
		cfg.RejoinWindow = 128
	case cfg.RejoinWindow < 0:
		cfg.RejoinWindow = 0 // disabled
	}
	switch {
	case cfg.HelloBurst == 0:
		cfg.HelloBurst = 64 + 8*n
	case cfg.HelloBurst < 0:
		cfg.HelloBurst = 0 // disabled
	}
	switch {
	case cfg.RoundHorizon == 0:
		cfg.RoundHorizon = cfg.RejoinWindow + 64
	case cfg.RoundHorizon < 0:
		cfg.RoundHorizon = 0 // disabled
	}
	c := &Conn{
		cfg:        cfg,
		n:          n,
		links:      make([]link, n),
		inbound:    make(map[net.Conn]struct{}),
		byRound:    make(map[uint64]map[int]inboxEntry),
		round:      cfg.ResumeRound,
		frontier:   cfg.ResumeRound,
		tails:      make([]map[uint64]*wire.Frame, n),
		wmu:        make([]sync.Mutex, n),
		helloCount: make(map[string]int),
		adm:        make([]*wire.Admission, n),
		done:       make(chan struct{}),
	}
	for j := range c.tails {
		c.tails[j] = make(map[uint64]*wire.Frame)
	}
	budget := wire.DefaultBudget(maxFrame, cfg.RejoinWindow)
	if cfg.Budget != nil {
		budget = *cfg.Budget
	}
	for j := range c.adm {
		if j != cfg.ID {
			c.adm[j] = wire.NewAdmission(budget)
		}
	}
	c.roundNow.Store(cfg.ResumeRound)
	c.cond = sync.NewCond(&c.mu)

	ln := cfg.Listener
	if ln == nil && cfg.ID < n-1 { // parties with higher-numbered peers must listen
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", cfg.Addrs[cfg.ID], err)
		}
	}
	c.listener = ln
	if ln != nil {
		c.wg.Add(1)
		go c.acceptLoop(ln)
	}
	deadline := time.Now().Add(cfg.DialTimeout)

	// Dial lower ids (with retries while their listeners come up).
	for j := 0; j < cfg.ID; j++ {
		var conn net.Conn
		var err error
		for time.Now().Before(deadline) {
			conn, err = net.DialTimeout("tcp", cfg.Addrs[j], time.Until(deadline))
			if err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("tcpnet: dial party %d at %s: %w", j, cfg.Addrs[j], err)
		}
		peerRound, err := c.handshakeAsDialer(conn, deadline)
		if err != nil {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("tcpnet: handshake with party %d: %w", j, err)
		}
		c.installLink(j, conn, peerRound)
	}

	// Wait for higher ids to dial in.
	timer := time.AfterFunc(time.Until(deadline), func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.mu.Lock()
	for c.missingPeer() >= 0 && time.Now().Before(deadline) && !c.closed {
		c.cond.Wait()
	}
	missing := c.missingPeer()
	c.mu.Unlock()
	timer.Stop()
	if missing >= 0 {
		c.Close()
		return nil, fmt.Errorf("tcpnet: no connection to party %d", missing)
	}
	return c, nil
}

// missingPeer returns the lowest peer id that has never connected (gen 0),
// or -1 when the mesh has been complete at least momentarily. Caller holds
// c.mu.
func (c *Conn) missingPeer() int {
	for j := 0; j < c.n; j++ {
		if j != c.cfg.ID && c.links[j].gen == 0 {
			return j
		}
	}
	return -1
}

// installLink records a fresh connection for peer and starts its reader.
// peerRound is the round the peer announced in its handshake: a peer behind
// our round is rejoining after a restart, and we replay our buffered outbox
// tail for the gap [peerRound, round] before going live. A gap the tail no
// longer covers is unrecoverable — the peer is demoted to silent rather
// than left permanently desynchronized.
func (c *Conn) installLink(peer int, conn net.Conn, peerRound uint64) {
	c.mu.Lock()
	l := &c.links[peer]
	if c.closed || l.state == linkSilent {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if peerRound > c.frontier {
		c.frontier = peerRound
	}
	// Coalesce the replay tail into one pooled batch frame under the lock;
	// ship it after release as a single deadline-bounded write, so a gap of
	// G rounds costs one write(2) instead of G and the tail frames cannot
	// be evicted (and released) out from under the write. Rounds
	// [peerRound, c.round) are mandatory — the peer cannot close them
	// without our frame. The current round's frame is included when already
	// sent (its live write raced the link being down); receivers dedup per
	// (round, peer), so overlap with the live send is harmless.
	var replay *wire.Frame
	var replayFrames int
	total := 0
	for r := peerRound; r <= c.round; r++ {
		f, ok := c.tails[peer][r]
		if !ok {
			if r == c.round {
				break // not sent yet; the live Exchange will cover it
			}
			// Unrecoverable gap: demote for the run.
			if l.conn != nil {
				l.conn.Close()
				l.conn = nil
			}
			l.state = linkSilent
			c.recordDemotionLocked(peer, wire.ReasonHandshake)
			l.gen++
			c.cond.Broadcast()
			c.mu.Unlock()
			conn.Close()
			return
		}
		total += f.Len()
		replayFrames++
	}
	if total > 0 {
		replay = c.arena.Buffer(total)
		off := 0
		for r := peerRound; r <= c.round; r++ {
			f, ok := c.tails[peer][r]
			if !ok {
				break
			}
			off += copy(replay.Bytes()[off:], f.Bytes())
		}
	}
	if l.conn != nil {
		// The peer reconnected before we noticed the old connection die;
		// the new one supersedes it.
		l.conn.Close()
	}
	l.conn = conn
	l.state = linkUp
	l.gen++
	gen := l.gen
	c.wg.Add(1)
	go c.readLoop(peer, gen, conn)
	c.cond.Broadcast()
	c.mu.Unlock()

	if replay != nil {
		c.writeBufs(peer, gen, conn, net.Buffers{replay.Bytes()}, replayFrames)
		replay.Release()
	}
}

// acceptLoop accepts (and re-accepts) connections from higher-id peers for
// the lifetime of the Conn.
func (c *Conn) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.handleInbound(conn)
	}
}

// handleInbound authenticates one inbound connection by its handshake and
// installs it as the peer's link. Garbage handshakes are dropped without
// disturbing the mesh. The handshake is bidirectional — each side announces
// (id, current round) — so a rejoining party learns the mesh frontier and
// peers learn what outbox tail to replay.
func (c *Conn) handleInbound(conn net.Conn) {
	host := helloHost(conn)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if c.cfg.HelloBurst > 0 && c.helloCount[host] >= c.cfg.HelloBurst {
		// Handshake churn from this host has exhausted its lifetime cap;
		// drop the connection before reading a byte of hello.
		c.mu.Unlock()
		c.hellosRejected.Add(1)
		conn.Close()
		return
	}
	c.helloCount[host]++
	c.inbound[conn] = struct{}{} // so Close can unblock the handshake read
	c.mu.Unlock()
	deadline := time.Now().Add(c.cfg.DialTimeout)
	id, peerRound, err := readHello(conn, deadline)
	c.mu.Lock()
	delete(c.inbound, conn)
	closed := c.closed
	round := c.round
	c.mu.Unlock()
	if closed || err != nil || id <= c.cfg.ID || id >= c.n {
		if !closed {
			c.hellosRejected.Add(1)
		}
		conn.Close()
		return
	}
	if err := writeHello(conn, c.cfg.ID, round, deadline); err != nil {
		conn.Close()
		return
	}
	c.installLink(id, conn, peerRound)
}

// handshakeAsDialer announces this party and reads the acceptor's reply,
// returning the acceptor's current round.
func (c *Conn) handshakeAsDialer(conn net.Conn, deadline time.Time) (uint64, error) {
	c.mu.Lock()
	round := c.round
	c.mu.Unlock()
	if err := writeHello(conn, c.cfg.ID, round, deadline); err != nil {
		return 0, err
	}
	_, peerRound, err := readHello(conn, deadline)
	return peerRound, err
}

// ID returns this party's identifier.
func (c *Conn) ID() transport.PartyID { return transport.PartyID(c.cfg.ID) }

// N returns the cluster size.
func (c *Conn) N() int { return c.n }

// T returns the corruption budget.
func (c *Conn) T() int { return c.cfg.T }

// Faulty returns the peers demoted to silent for the run — either caught
// violating the framing protocol or unreachable after all reconnect
// attempts. The slice is ordered by party id.
func (c *Conn) Faulty() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for j := range c.links {
		if c.links[j].state == linkSilent {
			out = append(out, j)
		}
	}
	return out
}

// BreakLink forcibly closes the current connection to peer, as a network
// fault would; the reconnect machinery then tries to restore it. It is a
// test hook for exercising degradation paths.
func (c *Conn) BreakLink(peer int) {
	if peer < 0 || peer >= c.n || peer == c.cfg.ID {
		return
	}
	c.mu.Lock()
	conn := c.links[peer].conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close() // the read loop observes the failure and drives the state machine
	}
}

// Exchange implements one synchronous round: it ships this round's packets
// to every up peer (an empty frame to peers with none), waits up to Delta
// for all up peers' frames, and returns the delivered messages sorted by
// sender.
func (c *Conn) Exchange(out []transport.Packet) ([]transport.Message, error) {
	r, err := c.beginRound()
	if err != nil {
		return nil, err
	}

	// Group payloads per destination.
	perDest := make([][][]byte, c.n)
	for _, p := range out {
		if p.To < 0 || int(p.To) >= c.n {
			continue
		}
		perDest[p.To] = append(perDest[p.To], p.Payload)
	}
	var selfMsgs []transport.Message
	for _, payload := range perDest[c.cfg.ID] {
		selfMsgs = append(selfMsgs, transport.Message{From: transport.PartyID(c.cfg.ID), Payload: payload})
	}
	for j := 0; j < c.n; j++ {
		if j == c.cfg.ID {
			continue
		}
		// Encode once into pooled memory, then ship as one vectored write.
		// A broken peer link is that peer's problem (it goes down or
		// silent); the round keeps going for everyone else.
		if c.cfg.RejoinWindow > 0 {
			// Rejoin buffering needs a flat, retained copy of the frame
			// anyway, so lay it down in one pooled buffer, hand ownership
			// to the tail, and write that buffer.
			frame := c.arena.EncodeFrame(r, perDest[j])
			c.bufferTail(j, r, frame)
			c.vec = append(c.vec[:0], frame.Bytes())
			c.flushLink(j, c.vec, 1)
		} else {
			// No replay buffering: full scatter-gather — only the varint
			// connective tissue is written into a pooled header frame, the
			// payload bytes go to writev by reference and are never copied.
			vec, hdr := c.arena.AppendFrameVec(c.vec[:0], r, perDest[j])
			c.flushLink(j, vec, 1)
			c.vec = vec[:0]
			hdr.Release()
		}
	}

	return c.awaitRound(r, selfMsgs)
}

// ExchangeVec implements transport.VecNet: one synchronous round whose
// outgoing payloads are scatter-gather vectors. Each packet's pieces flow
// into the per-peer writev by reference — multiplexers stacking a routing
// header on payloads they don't own pay zero payload copies here. With
// rejoin buffering on, the flat retained copy the tail needs doubles as
// the write buffer, so the copy that must happen is the only one. On the
// wire and at the receiver the round is indistinguishable from Exchange
// over the concatenated payloads.
func (c *Conn) ExchangeVec(out []transport.VecPacket) ([]transport.Message, error) {
	r, err := c.beginRound()
	if err != nil {
		return nil, err
	}

	perDest := make([][][][]byte, c.n)
	for i := range out {
		p := &out[i]
		if p.To < 0 || int(p.To) >= c.n {
			continue
		}
		perDest[p.To] = append(perDest[p.To], p.Vec)
	}
	var selfMsgs []transport.Message
	for _, v := range perDest[c.cfg.ID] {
		// Self-delivery outlives the caller's pieces (the contract frees
		// them when ExchangeVec returns), so it gets the one flattening
		// copy the network peers don't pay.
		selfMsgs = append(selfMsgs, transport.Message{From: transport.PartyID(c.cfg.ID), Payload: transport.FlattenVec(v)})
	}
	for j := 0; j < c.n; j++ {
		if j == c.cfg.ID {
			continue
		}
		if c.cfg.RejoinWindow > 0 {
			frame := c.arena.EncodeFrameVecs(r, perDest[j])
			c.bufferTail(j, r, frame)
			c.vec = append(c.vec[:0], frame.Bytes())
			c.flushLink(j, c.vec, 1)
		} else {
			vec, hdr := c.arena.AppendFrameVecs(c.vec[:0], r, perDest[j])
			c.flushLink(j, vec, 1)
			c.vec = vec[:0]
			hdr.Release()
		}
	}

	return c.awaitRound(r, selfMsgs)
}

var _ transport.VecNet = (*Conn)(nil)

// beginRound opens a synchronous round: it snapshots the round number and
// releases the previous round's borrowed payload frames — the "valid until
// the next Exchange call" edge of the BorrowedReads contract.
func (c *Conn) beginRound() (uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	r := c.round
	spent := c.spent
	c.spent = c.spent[:0]
	c.mu.Unlock()
	for _, f := range spent {
		f.Release()
	}
	return r, nil
}

// awaitRound blocks until round r closes — all up peers' frames arrived or
// Δ expired — then advances the round clock and returns the delivered
// messages (self-deliveries included) sorted by sender.
func (c *Conn) awaitRound(r uint64, selfMsgs []transport.Message) ([]transport.Message, error) {
	deadline := time.Now().Add(c.cfg.Delta)
	timer := time.AfterFunc(c.cfg.Delta, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, ErrClosed
		}
		have := len(c.byRound[r])
		if have >= c.expectedPeers() || time.Now().After(deadline) {
			break
		}
		c.cond.Wait()
	}
	msgs := append([]transport.Message{}, selfMsgs...)
	for _, e := range c.byRound[r] {
		msgs = append(msgs, e.msgs...)
		if e.frame != nil {
			// Keep the pooled buffer alive for the caller; the next
			// Exchange releases it.
			c.spent = append(c.spent, e.frame)
		}
	}
	delete(c.byRound, r)
	c.round = r + 1
	c.roundNow.Store(r + 1) // release the round clock to the read loops' gates
	sortMessages(msgs)
	return msgs, nil
}

// Stats returns cumulative counters for this Conn. Demotions and Peers
// are sorted by party id.
func (c *Conn) Stats() Stats {
	s := Stats{
		FramesSent:     c.framesSent.Load(),
		Writes:         c.writes.Load(),
		BytesSent:      c.bytesSent.Load(),
		HellosRejected: c.hellosRejected.Load(),
		FramesDropped:  c.framesDropped.Load(),
	}
	c.mu.Lock()
	s.Demotions = append(s.Demotions, c.demotions...)
	c.mu.Unlock()
	sort.Slice(s.Demotions, func(i, j int) bool { return s.Demotions[i].Peer < s.Demotions[j].Peer })
	demoted := make(map[int]wire.Reason, len(s.Demotions))
	for _, d := range s.Demotions {
		demoted[d.Peer] = d.Reason
	}
	for j := 0; j < c.n; j++ {
		if j == c.cfg.ID {
			continue
		}
		s.Peers = append(s.Peers, PeerStats{
			Peer:              j,
			AdmissionCounters: c.adm[j].Counters(),
			Demoted:           demoted[j],
		})
	}
	return s
}

// expectedPeers counts peers the round should wait for: only links that are
// up. Down peers would cost a full Δ every round; silent peers are gone for
// good. Caller holds c.mu.
func (c *Conn) expectedPeers() int {
	exp := 0
	for j := range c.links {
		if j != c.cfg.ID && c.links[j].state == linkUp {
			exp++
		}
	}
	return exp
}

// Close tears down the mesh, unblocking any Exchange in flight.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	for j := range c.links {
		if c.links[j].conn != nil {
			c.links[j].conn.Close()
			c.links[j].conn = nil
		}
		c.links[j].gen++
	}
	for conn := range c.inbound {
		conn.Close()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.listener != nil {
		c.listener.Close()
	}
	c.wg.Wait()
	return nil
}

// readLoop consumes frames from one connection until it fails. gen pins the
// connection generation: if the link has been replaced or torn down since,
// the loop's observations are stale and discarded.
func (c *Conn) readLoop(peer int, gen uint64, conn net.Conn) {
	defer c.wg.Done()
	idle := c.idleTimeout()
	// The counting wrapper lets a deadline expiry be classified: bytes
	// consumed mid-frame mean the peer is alive but trickling (slow-loris,
	// demotable), no bytes at all mean the connection is presumed dead
	// (reconnectable).
	src := &countingReader{conn: conn}
	// The buffered reader turns the codec's byte-at-a-time varint reads
	// into memory reads; on a raw conn every varint byte is its own
	// read(2) syscall (and, through the io.Reader interface, a heap
	// allocation for the 1-byte scratch).
	br := bufio.NewReaderSize(src, 64<<10)
	gate := c.adm[peer]
	var scratch [][]byte
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		gate.Advance(c.roundNow.Load())
		consumed := src.n - int64(br.Buffered())
		var (
			round    uint64
			payloads [][]byte
			frame    *wire.Frame
			err      error
		)
		if c.cfg.BorrowedReads {
			round, payloads, frame, err = c.arena.ReadFrameIntoGated(br, maxFrame, scratch, gate)
		} else {
			round, payloads, err = wire.ReadFrameGated(br, maxFrame, gate)
		}
		if err != nil {
			if isTimeout(err) && src.n-int64(br.Buffered()) > consumed {
				// The deadline expired with partial-frame progress: the peer
				// is alive and trickling, not dead. (A dead peer mid-frame
				// surfaces as io.ErrUnexpectedEOF — an I/O error — so only
				// live connections can earn the stall verdict.)
				err = wire.StallError(fmt.Sprintf("mid-frame trickle past the %v read deadline", idle))
			}
			c.linkLost(peer, gen, err)
			return
		}
		c.mu.Lock()
		if c.closed || c.links[peer].gen != gen {
			c.mu.Unlock()
			if frame != nil {
				frame.Release() // nothing retained the payloads
			}
			return
		}
		horizon := uint64(c.cfg.RoundHorizon)
		switch {
		case round < c.round: // frames for completed rounds are stale
		case horizon > 0 && round-c.round > horizon:
			// Beyond the buffering horizon: drop, don't demote — an honest
			// fast peer can legitimately run ahead of a stalled party, but
			// holding frames for it unboundedly would hand a hostile one a
			// memory lever.
			c.framesDropped.Add(1)
		default:
			msgs := make([]transport.Message, 0, len(payloads))
			for _, p := range payloads {
				msgs = append(msgs, transport.Message{From: transport.PartyID(peer), Payload: p})
			}
			if c.byRound[round] == nil {
				c.byRound[round] = make(map[int]inboxEntry)
			}
			if _, dup := c.byRound[round][peer]; !dup {
				c.byRound[round][peer] = inboxEntry{msgs: msgs, frame: frame}
				frame = nil // ownership moved to the inbox
			}
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		if frame != nil {
			// Stale round or duplicate delivery: the payloads were never
			// handed to anyone, so the buffer goes straight back.
			frame.Release()
		}
		// The payload slice headers were copied into msgs (or dropped), so
		// the scratch array is free for the next frame.
		scratch = payloads[:0]
	}
}

// countingReader counts bytes the connection has delivered, so the read
// loop can measure per-frame progress. It is touched only by the one read
// loop that owns it (bufio fills and the post-error check run on the same
// goroutine), so the counter needs no synchronization.
type countingReader struct {
	conn net.Conn
	n    int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.conn.Read(p)
	cr.n += int64(n)
	return n, err
}

// isTimeout reports whether err is a read-deadline expiry (as opposed to a
// reset, EOF, or protocol violation).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// idleTimeout is how long a connection may sit without a complete frame
// before it is presumed dead. Every live peer sends every round, so normal
// traffic arrives at least once per Δ; 8Δ of silence (floored at 2s so
// millisecond-Δ tests don't flap) means the connection itself is gone.
func (c *Conn) idleTimeout() time.Duration {
	idle := 8 * c.cfg.Delta
	if idle < 2*time.Second {
		idle = 2 * time.Second
	}
	return idle
}

// linkLost transitions a link out of up after a read or write failure on
// generation gen. Frame-protocol violations (wire.ErrFrame) and ingress
// verdicts (wire.ErrAdmission: budget, rate, stall) demote the peer to
// silent for the run with a structured reason; I/O failures mark the link
// down and, on the dialing side, kick off reconnection.
func (c *Conn) linkLost(peer int, gen uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := &c.links[peer]
	if c.closed || l.gen != gen || l.state == linkSilent {
		return
	}
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.gen++
	reason := wire.ReasonNone
	var aerr *wire.AdmissionError
	switch {
	case errors.As(err, &aerr):
		reason = aerr.Reason
	case errors.Is(err, wire.ErrFrame):
		reason = wire.ReasonProtocol
	}
	if reason != wire.ReasonNone {
		l.state = linkSilent
		c.recordDemotionLocked(peer, reason)
	} else {
		l.state = linkDown
		if peer < c.cfg.ID && c.cfg.ReconnectAttempts > 0 && !l.reconnecting {
			l.reconnecting = true
			go c.reconnectLoop(peer)
		}
	}
	c.cond.Broadcast()
}

// recordDemotionLocked appends the structured verdict for a peer's
// transition to silent and purges the peer's buffered future-round frames.
// The purge matters under attack: a flooder pre-delivers frames for many
// rounds before it trips the rate limiter, and if those stayed buffered
// they would both count toward round completion (closing rounds before
// honest frames arrive) and be delivered rounds after the sender was
// judged hostile. Caller holds c.mu; the link state machine admits at
// most one such transition per peer.
func (c *Conn) recordDemotionLocked(peer int, reason wire.Reason) {
	c.demotions = append(c.demotions, Demotion{Peer: peer, Reason: reason, Round: c.round})
	for r, entries := range c.byRound {
		e, ok := entries[peer]
		if !ok {
			continue
		}
		if e.frame != nil {
			e.frame.Release()
		}
		delete(entries, peer)
		if len(entries) == 0 {
			delete(c.byRound, r)
		}
	}
}

// reconnectLoop re-dials a down peer with exponential backoff and jitter.
// It runs on the dialing side only (the accepting side re-accepts
// passively). Exhausting the attempts demotes the peer to silent.
//
// The loop is deliberately not in c.wg: Close must not block behind an
// in-flight dial. Every state change is guarded by c.closed.
func (c *Conn) reconnectLoop(peer int) {
	backoff := c.cfg.ReconnectBase
	for attempt := 0; attempt < c.cfg.ReconnectAttempts; attempt++ {
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)))
		backoff *= 2
		// Cap the backoff so a long-absent peer (crashed, checkpointing,
		// restarting) is probed about once a second rather than ever more
		// rarely; the rejoin path depends on a timely re-dial.
		if backoff > time.Second {
			backoff = time.Second
		}
		select {
		case <-c.done:
			return
		case <-time.After(wait):
		}
		conn, err := net.DialTimeout("tcp", c.cfg.Addrs[peer], c.cfg.DialTimeout)
		if err != nil {
			continue
		}
		peerRound, err := c.handshakeAsDialer(conn, time.Now().Add(c.cfg.DialTimeout))
		if err != nil {
			conn.Close()
			continue
		}
		c.mu.Lock()
		l := &c.links[peer]
		if c.closed || l.state != linkDown {
			c.mu.Unlock()
			conn.Close()
			return
		}
		l.reconnecting = false
		c.mu.Unlock()
		c.installLink(peer, conn, peerRound)
		return
	}
	c.mu.Lock()
	l := &c.links[peer]
	l.reconnecting = false
	if !c.closed && l.state == linkDown {
		l.state = linkSilent
		c.recordDemotionLocked(peer, wire.ReasonUnreachable)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// bufferTail hands ownership of peer's encoded frame for round r to the
// rejoin tail and evicts (releasing back to the arena) rounds that have
// slid out of the window. Eviction always trails the current round by the
// full window, so a frame is released only long after its own write
// completed; replay reads of tail frames happen under c.mu, which is also
// held here, so a replay can never observe a released frame.
func (c *Conn) bufferTail(peer int, r uint64, frame *wire.Frame) {
	c.mu.Lock()
	c.tails[peer][r] = frame
	if r >= uint64(c.cfg.RejoinWindow) {
		if old, ok := c.tails[peer][r-uint64(c.cfg.RejoinWindow)]; ok {
			delete(c.tails[peer], r-uint64(c.cfg.RejoinWindow))
			old.Release()
		}
	}
	c.mu.Unlock()
}

// FrontierGap reports how many rounds ahead of this party's ResumeRound the
// mesh was when it (re)joined — the restart-to-rejoin latency in rounds. A
// fresh party's gap is 0; a rejoining party's gap is how much of its peers'
// outbox tails had to be replayed.
func (c *Conn) FrontierGap() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frontier <= c.cfg.ResumeRound {
		return 0
	}
	return c.frontier - c.cfg.ResumeRound
}

// flushLink snapshots peer's live connection and ships the queued
// scatter-gather pieces, tolerating any link state: a peer that is down or
// silent is simply skipped, and a write failure drives the link state
// machine instead of failing the round.
func (c *Conn) flushLink(peer int, bufs net.Buffers, frames int) {
	c.mu.Lock()
	l := &c.links[peer]
	if c.closed || l.state != linkUp || l.conn == nil {
		c.mu.Unlock()
		return
	}
	conn, gen := l.conn, l.gen
	c.mu.Unlock()
	c.writeBufs(peer, gen, conn, bufs, frames)
}

// writeBufs performs one vectored, Δ-deadline-bounded write of bufs on
// conn. net.Buffers.WriteTo lowers to a single writev(2) on a TCP
// connection, so however many frames (replay batch) or frame pieces
// (scatter-gather encode) the vector carries, the kernel crossing is one
// syscall. WriteTo consumes the vector, so callers rebuild bufs per call.
func (c *Conn) writeBufs(peer int, gen uint64, conn net.Conn, bufs net.Buffers, frames int) {
	var total uint64
	for _, b := range bufs {
		total += uint64(len(b))
	}
	c.wmu[peer].Lock()
	err := conn.SetWriteDeadline(time.Now().Add(c.cfg.Delta))
	if err == nil {
		//calint:ignore mutexhold wmu is a per-socket leaf mutex ordering concurrent writers (live send vs rejoin replay); the write is Delta-deadline-bounded and Close unblocks it by closing the conn
		_, err = bufs.WriteTo(conn)
	}
	c.wmu[peer].Unlock()
	c.writes.Add(1)
	c.framesSent.Add(uint64(frames))
	c.bytesSent.Add(total)
	if err != nil {
		c.linkLost(peer, gen, err)
	}
}

// writeHello sends one direction of the (id, round) handshake.
func writeHello(conn net.Conn, id int, round uint64, deadline time.Time) error {
	if err := conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	w := wire.NewWriter(12)
	w.Uvarint(uint64(id))
	w.Uvarint(round)
	_, err := conn.Write(w.Finish())
	if err == nil {
		err = conn.SetWriteDeadline(time.Time{})
	}
	return err
}

// readHello reads one direction of the (id, round) handshake. The read is
// bounded to helloMaxBytes — an unauthenticated dialer never triggers a
// larger read — and absurd id or round announcements are rejected.
func readHello(conn net.Conn, deadline time.Time) (int, uint64, error) {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return 0, 0, err
	}
	lr := io.LimitReader(conn, helloMaxBytes)
	v, err := wire.ReadUvarint(lr)
	if err != nil {
		return 0, 0, err
	}
	round, err := wire.ReadUvarint(lr)
	if err != nil {
		return 0, 0, err
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return 0, 0, err
	}
	if v > 1<<20 {
		return 0, 0, fmt.Errorf("tcpnet: absurd peer id %d", v)
	}
	if round > maxHelloRound {
		return 0, 0, fmt.Errorf("tcpnet: absurd hello round %d", round)
	}
	return int(v), round, nil
}

// helloHost extracts the remote host (sans port) for the per-host
// handshake cap; every reconnect from one machine shares one count.
func helloHost(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

func sortMessages(msgs []transport.Message) {
	// Sender order must be stable: a sender's messages keep arrival order,
	// which multiplexers stacked above rely on for replay determinism.
	// Small inboxes (one message per peer) take the insertion sort; a
	// session-mux round delivers tens of thousands of messages in
	// per-sender runs with many inversions, where insertion sort's
	// quadratic worst case dominated whole-tick CPU — hand those to the
	// O(m log m) stable sort.
	if len(msgs) > 64 {
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
		return
	}
	for i := 1; i < len(msgs); i++ {
		for j := i; j > 0 && msgs[j].From < msgs[j-1].From; j-- {
			msgs[j], msgs[j-1] = msgs[j-1], msgs[j]
		}
	}
}
