// Fedlearn models byzantine-robust distributed machine learning (the paper
// cites collaborative/byzantine ML [4, 18, 19, 48] as a CA application):
// worker nodes jointly train a tiny linear model, agreeing each step on a
// common gradient via vector Convex Agreement.
//
// Poisoning workers submit gradients designed to blow the model up; box
// validity clamps every coordinate of the agreed gradient into the honest
// workers' range, so the model converges despite them — the agreement-based
// cousin of coordinate-wise trimmed-mean robust aggregation, with the extra
// guarantee that all workers apply *exactly the same* update.
//
// Run with: go run ./examples/fedlearn
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	ca "convexagreement"
)

const fixedScale = 1000 // gradients in thousandths

func main() {
	const (
		n     = 7  // workers, tolerating 2 byzantine
		steps = 8  // training steps
		lr    = 40 // learning rate (percent)
	)
	rng := rand.New(rand.NewSource(5))

	// Ground truth the honest workers' local data reflects: w* = (3.0, -2.0).
	truth := []float64{3.0, -2.0}
	model := []float64{0, 0}

	corr := map[int]ca.Corruption{
		2: {Kind: ca.AdvGhost, InputVector: []*big.Int{
			big.NewInt(1_000_000), big.NewInt(1_000_000), // exploding gradient
		}},
		5: {Kind: ca.AdvEquivocate},
	}
	fmt.Printf("%d workers (%d poisoned) training toward w* = (%.1f, %.1f)\n\n", n, len(corr), truth[0], truth[1])
	fmt.Println("step  agreed gradient        model after step     distance to w*")
	for step := 0; step < steps; step++ {
		// Each honest worker proposes a noisy gradient pointing at w*.
		inputs := make([][]*big.Int, n)
		for w := 0; w < n; w++ {
			vec := make([]*big.Int, 2)
			for c := range vec {
				grad := truth[c] - model[c]
				noise := (rng.Float64() - 0.5) * 0.2
				vec[c] = big.NewInt(int64((grad + noise) * fixedScale))
			}
			inputs[w] = vec
		}
		res, err := ca.AgreeVector(inputs, ca.Options{Corruptions: corr, Seed: int64(step)})
		if err != nil {
			log.Fatal(err)
		}
		for c := range model {
			model[c] += float64(res.Output[c].Int64()) / fixedScale * lr / 100
		}
		dist := 0.0
		for c := range model {
			d := truth[c] - model[c]
			dist += d * d
		}
		fmt.Printf("%4d  (%+7.3f, %+7.3f)     (%+6.3f, %+6.3f)     %.4f\n",
			step,
			float64(res.Output[0].Int64())/fixedScale,
			float64(res.Output[1].Int64())/fixedScale,
			model[0], model[1], dist)
	}
	fmt.Println("\nthe poisoned 10⁶-magnitude gradients never reached the model:")
	fmt.Println("every agreed coordinate was clamped into the honest workers' range.")
}
