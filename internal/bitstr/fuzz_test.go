package bitstr

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal: arbitrary bytes either fail cleanly or decode to a string
// whose re-encoding is byte-identical (canonical form).
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(MustParse("10110").Marshal())
	f.Add([]byte{0, 0, 0, 9, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := Unmarshal(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(s.Marshal(), raw) {
			t.Fatalf("non-canonical decode: %q from %v", s.String(), raw)
		}
		// Exercise the algebra on whatever decoded.
		if s.Len() > 0 {
			half, err := s.Prefix(s.Len() / 2)
			if err != nil {
				t.Fatal(err)
			}
			if !s.HasPrefix(half) {
				t.Fatal("prefix not a prefix")
			}
			min, err := half.MinFill(s.Len())
			if err != nil {
				t.Fatal(err)
			}
			max, err := half.MaxFill(s.Len())
			if err != nil {
				t.Fatal(err)
			}
			if min.Cmp(max) > 0 {
				t.Fatalf("MIN %v > MAX %v", min, max)
			}
		}
	})
}
