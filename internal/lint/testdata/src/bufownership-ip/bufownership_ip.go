// Package bufipfix is the golden fixture for the interprocedural
// frame-ownership check: passing a *wire.Frame to an always-releasing
// or retaining callee (classified by the summary fixpoint, transitively)
// retires or transfers the frame; later uses and Releases are findings.
package bufipfix

import "convexagreement/internal/wire"

// consume takes ownership and always releases.
func consume(f *wire.Frame) {
	f.Release()
}

// forward hands the frame to consume: transitively always-releasing.
func forward(f *wire.Frame) {
	consume(f)
}

type queue struct {
	frames []*wire.Frame
}

// stash retains the frame: ownership moves to whoever drains the queue.
func (q *queue) stash(f *wire.Frame) {
	q.frames = append(q.frames, f)
}

func useAfterConsume(f *wire.Frame) {
	consume(f)
	_ = f.Bytes() // want `frame f used after .*consume released it`
}

func useAfterForward(f *wire.Frame) {
	forward(f)
	_ = f.Len() // want `frame f used after .*forward released it`
}

func doubleRelease(f *wire.Frame) {
	consume(f)
	f.Release() // want `frame f released twice: .*consume already released it`
}

func releaseAfterStash(q *queue, f *wire.Frame) {
	q.stash(f)
	f.Release() // want `frame f released after ownership moved to .*stash`
}

func okStash(q *queue, f *wire.Frame) {
	q.stash(f) // ok: never touched again
}

func maybeConsume(f *wire.Frame, drop bool) {
	if drop {
		f.Release()
	}
}

func okMaybe(f *wire.Frame) {
	maybeConsume(f, false)
	_ = f.Len() // ok: maybe-release is tracked but not reported
}

func okBranch(f *wire.Frame, done bool) {
	if done {
		consume(f)
		return
	}
	_ = f.Len()
	consume(f) // ok: the releasing branch returned
}

func okRebind(a *wire.Arena, f *wire.Frame) {
	consume(f)
	f = a.Buffer(16)
	consume(f) // ok: reassignment binds a fresh frame
}

func okDeferredConsume(f *wire.Frame) {
	defer consume(f)
	_ = f.Len() // ok: the deferred release fires at function exit
}

func deferredDouble(f *wire.Frame) {
	defer consume(f)
	f.Release() // want `frame f released twice: deferred call to .*consume at line \d+ also releases it`
}

func suppressed(f *wire.Frame) {
	consume(f)
	//calint:ignore bufownership-ip fixture demonstrates a reasoned suppression
	_ = f.Bytes()
}
