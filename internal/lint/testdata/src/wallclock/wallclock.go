// Fixture for the wallclock analyzer: observing or scheduling against
// real time is flagged; duration arithmetic and decoding recorded
// timestamps are not.
package wallclock

import "time"

func badNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want `time\.After reads the wall clock`
}

func badTicker() {
	tk := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	tk.Stop()
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func goodDurationMath(delta time.Duration) time.Duration {
	return 3*delta + time.Millisecond
}

func goodDecode(sec int64) time.Time {
	return time.Unix(sec, 0) // decoding recorded data, not observing the clock
}

func suppressed() time.Time {
	//calint:ignore wallclock startup banner only, never enters protocol state
	return time.Now()
}
