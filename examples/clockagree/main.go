// Clockagree models the decentralized clock / fair transaction-ordering
// workload the paper cites ([14]): validators hold slightly skewed local
// clocks and must agree on a common timestamp for each block, such that the
// agreed time can never be dragged outside the honest clocks' span (which
// would let a byzantine coalition reorder transactions).
//
// Each round the validators run Convex Agreement on their current local
// clock reading (microseconds); byzantine validators report timestamps far
// in the future or past. The example also demonstrates the fixed-length
// protocol variant: timestamps have a known 64-bit width, so the parties
// can skip Π_ℕ's length-estimation phase entirely.
//
// Run with: go run ./examples/clockagree
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	ca "convexagreement"
)

func main() {
	const (
		n      = 7
		blocks = 5
		width  = 64 // publicly known timestamp width in bits
	)
	rng := rand.New(rand.NewSource(99))
	baseClock := int64(1_726_000_000_000_000) // µs since epoch

	fmt.Println("block  honest clock span (µs offsets)  agreed offset  skew-bounded  rounds")
	for blk := 0; blk < blocks; blk++ {
		baseClock += 400_000 // 400ms block time

		// Honest validators: clocks within ±50ms of true time.
		inputs := make([]*big.Int, n)
		for i := range inputs {
			inputs[i] = big.NewInt(baseClock + rng.Int63n(100_001) - 50_000)
		}
		// A fast-forward attacker (+1 hour) and an archive attacker (−1 day).
		corr := map[int]ca.Corruption{
			1: {Kind: ca.AdvGhost, Input: big.NewInt(baseClock + 3_600_000_000)},
			4: {Kind: ca.AdvGhost, Input: big.NewInt(baseClock - 86_400_000_000)},
		}
		var honest []*big.Int
		for i, v := range inputs {
			if _, bad := corr[i]; !bad {
				honest = append(honest, v)
			}
		}
		res, err := ca.Agree(inputs, ca.Options{
			Protocol:    ca.ProtoFixedLength, // FIXEDLENGTHCA (§3): width is public
			Width:       width,
			Corruptions: corr,
			Seed:        int64(blk),
		})
		if err != nil {
			log.Fatal(err)
		}
		lo, hi, _ := ca.Hull(honest)
		fmt.Printf("%5d  [%+7d, %+7d]              %+9d      %-5v         %d\n",
			blk,
			new(big.Int).Sub(lo, big.NewInt(baseClock)).Int64(),
			new(big.Int).Sub(hi, big.NewInt(baseClock)).Int64(),
			new(big.Int).Sub(res.Output, big.NewInt(baseClock)).Int64(),
			ca.InHull(res.Output, honest),
			res.Rounds)
	}
	fmt.Println("\nno byzantine clock moved an agreed timestamp outside the honest span.")
}
