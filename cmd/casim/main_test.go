package main

import (
	"testing"

	ca "convexagreement"
)

func TestParseCorruptions(t *testing.T) {
	got, err := parseCorruptions("2:ghost:1000000,5:silent")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d corruptions", len(got))
	}
	if got[2].Kind != ca.AdvGhost || got[2].Input.Int64() != 1000000 {
		t.Errorf("ghost entry = %+v", got[2])
	}
	if got[5].Kind != ca.AdvSilent || got[5].Input != nil {
		t.Errorf("silent entry = %+v", got[5])
	}
	if got, err := parseCorruptions(""); err != nil || len(got) != 0 {
		t.Errorf("empty spec: %v %v", got, err)
	}
	for _, bad := range []string{"2", "x:ghost", "2:ghost:notanumber"} {
		if _, err := parseCorruptions(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestBuildInputs(t *testing.T) {
	got, err := buildInputs("10,-3,12345678901234567890", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Int64() != -3 {
		t.Fatalf("inputs = %v", got)
	}
	if got[2].String() != "12345678901234567890" {
		t.Errorf("big input = %v", got[2])
	}
	if _, err := buildInputs("1,x", 0, 0, 1); err == nil {
		t.Error("garbage input accepted")
	}
	if _, err := buildInputs("1,2", 0, 3, 1); err == nil {
		t.Error("n mismatch accepted")
	}
	rnd, err := buildInputs("", 16, 5, 7)
	if err != nil || len(rnd) != 5 {
		t.Fatalf("random inputs: %v %v", rnd, err)
	}
	for _, v := range rnd {
		if v.Sign() < 0 || v.BitLen() > 16 {
			t.Errorf("random input %v out of range", v)
		}
	}
	again, _ := buildInputs("", 16, 5, 7)
	for i := range rnd {
		if rnd[i].Cmp(again[i]) != 0 {
			t.Error("random inputs not seed-deterministic")
		}
	}
}
