// Package checkpoint is the durable write-ahead log behind resumable
// sessions: every round a checkpointed party completes is appended to an
// fsync'd, CRC-framed log, so a party killed mid-instance can replay its
// exact view — same inputs, same per-round inboxes — and deterministically
// re-derive the protocol state it died in.
//
// The paper's model (§2) has no recovery story: a crashed party is
// corrupt-and-silent forever and charged against t. For a long-lived
// deployment (the ROADMAP's price oracle / clock network) that accounting
// is too pessimistic — a party that restarts with its state intact is
// *honest*, not byzantine. The WAL supplies exactly the state that makes
// the restart deterministic: because every protocol in this repository is a
// deterministic function of (input, received inboxes), replaying the
// recorded inboxes reproduces the party's outbound traffic and internal
// state bit-for-bit without serializing any protocol internals.
//
// Record framing (append-only, single file "wal" in the directory; a
// second copy "wal2" in mirrored mode):
//
//	uvarint  body length
//	body     (wire-encoded record, first byte is the record kind)
//	4 bytes  CRC-32C of body, little-endian
//
// Replay is torn-write tolerant: a truncated or CRC-damaged tail (the
// record being appended when the process died) is discarded and the file is
// truncated back to the last intact record. Corruption *before* the tail is
// indistinguishable from a tail under sequential scanning, so a single-copy
// log silently keeps the intact prefix — prefix-consistent, never divergent
// — while the mirrored mode recovers the longer prefix from the surviving
// copy (last-good-record voting, see Scrub) and repairs the damaged one.
//
// Storage discipline (hardened by the internal/errfs crash-point
// explorer): every append is fsync'd before being reported durable; the
// state DIRECTORY is fsync'd after the WAL is created (a crash right
// after create can otherwise lose the file entry itself, data and all)
// and after a torn-tail truncation is written back. All file operations
// go through an errfs.FS seam — the default is the real filesystem at
// zero overhead; tests swap in errfs.Mem to inject short writes, torn
// writes, fsync lies, bit rot, EIO, and ENOSPC at every operation.
//
// Record kinds:
//
//	meta      session geometry (n, t) — first record, written once
//	instance  start of instance: seq, kind, protocol, width, input [, D, ε]
//	round     one completed round's inbox: {from, payload}*
//	end       instance completed: the output
package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/big"
	"os"
	"path/filepath"

	"convexagreement/internal/errfs"
	"convexagreement/internal/transport"
	"convexagreement/internal/wire"
)

// Errors returned by the checkpoint layer.
var (
	// ErrCorrupt reports WAL damage that is not a torn tail — a record
	// decoded inconsistently (structurally impossible sequences, not CRC
	// noise).
	ErrCorrupt = errors.New("checkpoint: corrupt write-ahead log")
	// ErrClosed reports an append to a closed log.
	ErrClosed = errors.New("checkpoint: log closed")
	// ErrStorageDegraded reports that durability is impaired but the party
	// can keep running: an append failed (or, in mirrored mode, one copy
	// failed and the log fell back to the survivor). A session that sees
	// this from an append disables checkpointing and keeps participating —
	// liveness preserved, recovery forfeited.
	ErrStorageDegraded = errors.New("checkpoint: storage degraded")
	// ErrStorageLost reports that the checkpoint state cannot be read or
	// recovered at all — the directory is unusable or every WAL copy
	// failed. Resume is impossible; a restart must either run
	// uncheckpointed or give up.
	ErrStorageLost = errors.New("checkpoint: storage lost")
)

// Options selects the filesystem and the redundancy mode. The zero value
// is the production default: the real filesystem, single-copy WAL.
type Options struct {
	// FS is the filesystem seam; nil means the real OS filesystem.
	FS errfs.FS
	// Mirror enables the dual-copy WAL ("wal" + "wal2"): appends go to
	// both copies, recovery votes for the longest intact record prefix
	// and repairs the other copy from it, so any damage confined to one
	// copy — bit rot included — loses nothing.
	Mirror bool
}

func (o Options) fs() errfs.FS {
	if o.FS == nil {
		return errfs.OS{}
	}
	return o.FS
}

func (o Options) copyNames() []string {
	if o.Mirror {
		return []string{walName, walMirror}
	}
	return []string{walName}
}

// WAL copy file names inside the state directory.
const (
	walName   = "wal"
	walMirror = "wal2"
)

// Record kinds (first body byte).
const (
	recMeta     byte = 1
	recInstance byte = 2
	recRound    byte = 3
	recEnd      byte = 4
)

// Instance kinds.
const (
	// KindAgree is a Session.Agree instance (protocol, width, input).
	KindAgree byte = 1
	// KindApprox is a Session.ApproxAgree instance (input, D, ε).
	KindApprox byte = 2
)

// castagnoli is the CRC-32C table used for record framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecord bounds one WAL record body (a round inbox for one party); it
// matches the transports' 64 MiB frame ceiling.
const maxRecord = 64 << 20

// Instance is one recorded agreement instance.
type Instance struct {
	Seq      uint64
	Kind     byte   // KindAgree or KindApprox
	Protocol string // KindAgree only
	Width    int    // KindAgree only
	Input    *big.Int
	Diam     *big.Int // KindApprox only
	Eps      *big.Int // KindApprox only
	// Rounds holds the recorded per-round inboxes, in order. For completed
	// instances replayed from disk this is discarded (only the partial tail
	// instance needs its rounds for replay).
	Rounds [][]transport.Message
	Done   bool
	Output *big.Int
}

// State is what Open recovered from an existing WAL.
type State struct {
	// HasMeta reports whether a meta record was found; N and T are only
	// meaningful when it is set.
	HasMeta bool
	N, T    int
	// Seq is the number of completed instances.
	Seq uint64
	// NextRound is the total number of rounds recorded across all
	// instances — the absolute transport round at which a resumed party
	// goes live (feed it to the transport's resume/rejoin configuration).
	NextRound uint64
	// Partial is the instance the WAL ends inside, nil if the log ends at
	// an instance boundary. Its Rounds are the inboxes to replay.
	Partial *Instance
}

// walCopy is one physical copy of the log.
type walCopy struct {
	name string // path, for error reporting
	f    errfs.File
	dead bool
	err  error // why the copy was demoted

	// replay results, used during Open only.
	st   *State
	off  int64
	nrec int
	raw  []byte // intact byte prefix (mirror mode only)
	size int64
}

// Log is an open write-ahead log. Appends are fsync'd on every copy
// before returning, so a record that was reported durable survives
// process death. Not safe for concurrent use; a session drives it from
// one goroutine.
type Log struct {
	fs     errfs.FS
	dir    string
	copies []*walCopy
	// degraded is the sticky typed condition after any copy failed;
	// nil while fully healthy.
	degraded error
	closed   bool
}

// Open opens (creating if necessary) the WAL in dir on the real
// filesystem, replays it tolerating a torn tail, truncates any torn
// bytes, and returns the recovered state with the log positioned for
// appending.
func Open(dir string) (*Log, *State, error) { return OpenOptions(dir, Options{}) }

// OpenOptions is Open over an explicit filesystem and redundancy mode.
func OpenOptions(dir string, o Options) (*Log, *State, error) {
	fs := o.fs()
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("%w: mkdir %s: %v", ErrStorageLost, dir, err)
	}
	l := &Log{fs: fs, dir: dir}
	created := false
	for _, name := range o.copyNames() {
		path := filepath.Join(dir, name)
		c := &walCopy{name: path}
		f, madeNew, err := openCopy(fs, path)
		if err != nil {
			c.dead, c.err = true, err
		} else {
			c.f = f
			created = created || madeNew
		}
		l.copies = append(l.copies, c)
	}
	if created {
		// The WAL's directory entry must itself be durable: without this
		// fsync a crash right after create loses the file — entry, data,
		// fsyncs and all (verified by the errfs crash-point explorer).
		if err := fs.SyncDir(dir); err != nil {
			l.closeAll()
			return nil, nil, fmt.Errorf("%w: fsync dir %s: %v", ErrStorageLost, dir, err)
		}
	}

	// Replay every live copy independently.
	for _, c := range l.copies {
		if c.dead {
			continue
		}
		st, off, nrec, raw, err := replayCopy(c.f, o.Mirror)
		if err != nil {
			l.demote(c, err)
			continue
		}
		c.st, c.off, c.nrec, c.raw = st, off, nrec, raw
		if c.size, err = c.f.Seek(0, io.SeekEnd); err != nil {
			l.demote(c, fmt.Errorf("size: %w", err))
		}
	}

	// Vote: the copy with the longest intact record prefix wins. Try
	// finalists in vote order so a winner whose tail truncation fails
	// falls back to the next-best copy instead of losing everything.
	for {
		w := l.vote()
		if w == nil {
			err := l.firstErr()
			l.closeAll()
			if len(l.copies) == 1 {
				return nil, nil, err // preserve the single copy's typed error
			}
			return nil, nil, fmt.Errorf("%w: every WAL copy failed: %v", ErrStorageLost, err)
		}
		if err := finalizeWinner(fs, dir, w); err != nil {
			l.demote(w, err)
			continue
		}
		// Repair the other copies from the winner (mirror mode).
		for _, c := range l.copies {
			if c == w || c.dead {
				continue
			}
			if err := repairCopy(fs, dir, c, w.raw); err != nil {
				l.demote(c, err)
			}
		}
		st := w.st
		scrubReplayState(l.copies)
		return l, st, nil
	}
}

// openCopy opens one WAL copy, reporting whether it had to be created.
func openCopy(fs errfs.FS, path string) (errfs.File, bool, error) {
	f, err := fs.OpenFile(path, os.O_RDWR, 0o644)
	if err == nil {
		return f, false, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, false, fmt.Errorf("%w: open %s: %v", ErrStorageLost, path, err)
	}
	f, err = fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, fmt.Errorf("%w: create %s: %v", ErrStorageLost, path, err)
	}
	return f, true, nil
}

// finalizeWinner discards the winner's torn tail (if any) and positions
// it for appending. A truncation that actually discarded bytes is itself
// written back durably: file fsync plus directory fsync, so the shrunken
// length survives a crash.
func finalizeWinner(fs errfs.FS, dir string, w *walCopy) error {
	if w.size != w.off {
		if err := w.f.Truncate(w.off); err != nil {
			return fmt.Errorf("truncate torn tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("sync torn-tail truncation: %w", err)
		}
		if err := fs.SyncDir(dir); err != nil {
			return fmt.Errorf("sync dir after truncation: %w", err)
		}
	}
	if _, err := w.f.Seek(w.off, io.SeekStart); err != nil {
		return fmt.Errorf("seek: %w", err)
	}
	return nil
}

// repairCopy rewrites a lagging or damaged copy from the winner's intact
// prefix (mirror mode), leaving it positioned for appending.
func repairCopy(fs errfs.FS, dir string, c *walCopy, winnerRaw []byte) error {
	if bytes.Equal(c.raw, winnerRaw) && c.size == int64(len(winnerRaw)) {
		if _, err := c.f.Seek(c.size, io.SeekStart); err != nil {
			return fmt.Errorf("seek: %w", err)
		}
		return nil
	}
	if err := c.f.Truncate(0); err != nil {
		return fmt.Errorf("repair truncate: %w", err)
	}
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("repair seek: %w", err)
	}
	if _, err := c.f.Write(winnerRaw); err != nil {
		return fmt.Errorf("repair write: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("repair sync: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("repair dir sync: %w", err)
	}
	return nil
}

// vote returns the live copy with the longest intact record prefix
// (lowest index on ties), or nil if none are live.
func (l *Log) vote() *walCopy {
	var best *walCopy
	for _, c := range l.copies {
		if c.dead {
			continue
		}
		if best == nil || c.nrec > best.nrec {
			best = c
		}
	}
	return best
}

// demote marks a copy dead, records the degraded condition, and releases
// the copy's file.
func (l *Log) demote(c *walCopy, err error) {
	if c.dead {
		return
	}
	c.dead, c.err = true, err
	if l.degraded == nil {
		l.degraded = fmt.Errorf("%w: copy %s: %v", ErrStorageDegraded, c.name, err)
	}
	if c.f != nil {
		_ = c.f.Close() // the copy is already being abandoned
		c.f = nil
	}
}

// firstErr returns the first demotion error, for terminal reporting.
func (l *Log) firstErr() error {
	for _, c := range l.copies {
		if c.err != nil {
			return c.err
		}
	}
	return fmt.Errorf("%w: no WAL copy usable", ErrStorageLost)
}

func (l *Log) closeAll() {
	for _, c := range l.copies {
		if c.f != nil {
			_ = c.f.Close() // open is already failing; its error is the story
			c.f = nil
		}
	}
}

// scrubReplayState drops the per-copy replay scratch so the raw prefixes
// don't pin memory for the life of the log.
func scrubReplayState(copies []*walCopy) {
	for _, c := range copies {
		c.st, c.raw = nil, nil
	}
}

// Degraded returns the sticky typed storage condition: nil while every
// copy is healthy, an error wrapping ErrStorageDegraded after any copy
// was demoted (the log keeps appending to the survivors).
func (l *Log) Degraded() error { return l.degraded }

// Inspect replays the WAL in dir without keeping it open. A missing or
// empty WAL yields a zero State, not an error. A Close failure is a real
// error here: Open truncates the torn tail in place, and if that write-back
// cannot be completed the reported state may not match the file.
func Inspect(dir string) (*State, error) { return InspectOptions(dir, Options{}) }

// InspectOptions is Inspect over an explicit filesystem and mode.
func InspectOptions(dir string, o Options) (*State, error) {
	log, st, err := OpenOptions(dir, o)
	if err != nil {
		return nil, err
	}
	if err := log.Close(); err != nil {
		return nil, fmt.Errorf("checkpoint: inspect close: %w", err)
	}
	return st, nil
}

// replayCopy scans records from the start of f, returning the recovered
// state, the offset just past the last intact record, the intact record
// count, and (when keepRaw) the intact byte prefix for mirror repair.
func replayCopy(f errfs.File, keepRaw bool) (*State, int64, int, []byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, nil, fmt.Errorf("%w: seek: %v", ErrStorageLost, err)
	}
	st := &State{}
	var off int64
	nrec := 0
	r := &offsetReader{f: f, record: keepRaw}
	for {
		body, err := readRecord(r)
		if err == errTornTail {
			var raw []byte
			if keepRaw {
				raw = append([]byte(nil), r.raw[:off]...)
			}
			return st, off, nrec, raw, nil
		}
		if err != nil {
			return nil, 0, 0, nil, err
		}
		if err := st.apply(body); err != nil {
			return nil, 0, 0, nil, err
		}
		off = r.off
		nrec++
	}
}

// errTornTail is the internal sentinel for "the file ends mid-record".
var errTornTail = errors.New("torn tail")

// offsetReader tracks how many bytes have been consumed from f and,
// optionally, records them for mirror repair.
type offsetReader struct {
	f      io.Reader
	off    int64
	record bool
	raw    []byte
}

func (r *offsetReader) Read(p []byte) (int, error) {
	n, err := r.f.Read(p)
	r.off += int64(n)
	if r.record && n > 0 {
		r.raw = append(r.raw, p[:n]...)
	}
	return n, err
}

// readRecord reads one framed record. A clean EOF at a record boundary, a
// truncated frame, a garbage length, or a CRC mismatch all surface as
// errTornTail — the caller truncates there. (A CRC mismatch that is *not*
// at the tail is indistinguishable from one that is until the next read;
// since appends are sequential and fsync'd, treating every bad frame as the
// tail is the standard WAL recovery rule — and the mirrored mode's voting
// recovers whatever a single copy's mid-file damage would drop.) A read
// that fails with a real device error — not any flavor of EOF — is storage
// loss, not a tear, and is reported as such.
func readRecord(r io.Reader) ([]byte, error) {
	size, err := wire.ReadUvarint(r)
	if err != nil {
		if isDeviceErr(err) {
			return nil, fmt.Errorf("%w: read: %v", ErrStorageLost, err)
		}
		return nil, errTornTail // EOF at boundary, mid-varint, or garbage
	}
	if size == 0 || size > maxRecord {
		return nil, errTornTail // garbage length: treat as torn
	}
	buf := make([]byte, size+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		if isDeviceErr(err) {
			return nil, fmt.Errorf("%w: read: %v", ErrStorageLost, err)
		}
		return nil, errTornTail
	}
	body, sum := buf[:size], buf[size:]
	want := uint32(sum[0]) | uint32(sum[1])<<8 | uint32(sum[2])<<16 | uint32(sum[3])<<24
	if crc32.Checksum(body, castagnoli) != want {
		return nil, errTornTail
	}
	return body, nil
}

// isDeviceErr distinguishes an I/O failure from running out of bytes.
func isDeviceErr(err error) bool {
	return !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
		!errors.Is(err, wire.ErrFrame)
}

// apply folds one decoded record into the state.
func (st *State) apply(body []byte) error {
	rd := wire.NewReader(body)
	switch kind := rd.Byte(); kind {
	case recMeta:
		st.N = rd.Int()
		st.T = rd.Int()
		if err := rd.Close(); err != nil {
			return fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
		}
		st.HasMeta = true
	case recInstance:
		if st.Partial != nil {
			return fmt.Errorf("%w: instance record inside instance %d", ErrCorrupt, st.Partial.Seq)
		}
		inst := &Instance{}
		inst.Seq = rd.Uvarint()
		inst.Kind = rd.Byte()
		inst.Protocol = string(rd.BytesZC()) // string conversion copies
		inst.Width = rd.Int()
		inst.Input = readBig(rd)
		inst.Diam = readBig(rd)
		inst.Eps = readBig(rd)
		if err := rd.Close(); err != nil {
			return fmt.Errorf("%w: instance: %v", ErrCorrupt, err)
		}
		if inst.Seq != st.Seq {
			return fmt.Errorf("%w: instance %d follows %d completed", ErrCorrupt, inst.Seq, st.Seq)
		}
		st.Partial = inst
	case recRound:
		if st.Partial == nil {
			return fmt.Errorf("%w: round record outside an instance", ErrCorrupt)
		}
		count := rd.Int()
		msgs := make([]transport.Message, 0, count)
		for i := 0; i < count; i++ {
			from := rd.Int()
			msgs = append(msgs, transport.Message{From: transport.PartyID(from), Payload: rd.Bytes()})
		}
		if err := rd.Close(); err != nil {
			return fmt.Errorf("%w: round: %v", ErrCorrupt, err)
		}
		st.Partial.Rounds = append(st.Partial.Rounds, msgs)
		st.NextRound++
	case recEnd:
		if st.Partial == nil {
			return fmt.Errorf("%w: end record outside an instance", ErrCorrupt)
		}
		out := readBig(rd)
		if err := rd.Close(); err != nil {
			return fmt.Errorf("%w: end: %v", ErrCorrupt, err)
		}
		st.Partial.Done = true
		st.Partial.Output = out
		st.Partial = nil // completed instances don't need their rounds
		st.Seq++
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	return nil
}

// append frames one record body, then writes and fsyncs it on every live
// copy. The append is durable if at least one copy accepted it; a copy
// that fails is demoted (the log degrades to the survivors) and only when
// no copy remains does the append itself fail, typed ErrStorageDegraded.
func (l *Log) append(body []byte) error {
	if l.closed {
		return ErrClosed
	}
	w := wire.NewWriter(len(body) + 16)
	w.Uvarint(uint64(len(body)))
	w.Raw(body)
	sum := crc32.Checksum(body, castagnoli)
	w.Raw([]byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)})
	frame := w.Finish()
	durable := false
	for _, c := range l.copies {
		if c.dead {
			continue
		}
		if _, err := c.f.Write(frame); err != nil {
			l.demote(c, fmt.Errorf("append: %w", err))
			continue
		}
		if err := c.f.Sync(); err != nil {
			l.demote(c, fmt.Errorf("fsync: %w", err))
			continue
		}
		durable = true
	}
	if !durable {
		return fmt.Errorf("%w: append reached no copy: %v", ErrStorageDegraded, l.firstErr())
	}
	return nil
}

// AppendMeta records the session geometry. Written once, before the first
// instance.
func (l *Log) AppendMeta(n, t int) error {
	w := wire.NewWriter(16)
	w.Byte(recMeta)
	w.Uvarint(uint64(n))
	w.Uvarint(uint64(t))
	return l.append(w.Finish())
}

// AppendInstance records the start of instance inst (its parameters only;
// rounds follow as they complete).
func (l *Log) AppendInstance(inst *Instance) error {
	w := wire.NewWriter(64)
	w.Byte(recInstance)
	w.Uvarint(inst.Seq)
	w.Byte(inst.Kind)
	w.Bytes([]byte(inst.Protocol))
	w.Uvarint(uint64(inst.Width))
	writeBig(w, inst.Input)
	writeBig(w, inst.Diam)
	writeBig(w, inst.Eps)
	return l.append(w.Finish())
}

// AppendRound records one completed round's delivered inbox.
func (l *Log) AppendRound(msgs []transport.Message) error {
	size := 16
	for _, m := range msgs {
		size += len(m.Payload) + 8
	}
	w := wire.NewWriter(size)
	w.Byte(recRound)
	w.Uvarint(uint64(len(msgs)))
	for _, m := range msgs {
		w.Uvarint(uint64(m.From))
		w.Bytes(m.Payload)
	}
	return l.append(w.Finish())
}

// AppendEnd records the successful completion of the current instance.
func (l *Log) AppendEnd(output *big.Int) error {
	w := wire.NewWriter(32)
	w.Byte(recEnd)
	writeBig(w, output)
	return l.append(w.Finish())
}

// Close releases the files. Records already appended are durable.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	for _, c := range l.copies {
		if c.f == nil {
			continue
		}
		if err := c.f.Close(); err != nil && first == nil {
			first = err
		}
		c.f = nil
	}
	return first
}

// writeBig encodes an optional big.Int as presence/sign byte + magnitude.
func writeBig(w *wire.Writer, v *big.Int) {
	switch {
	case v == nil:
		w.Byte(0)
	case v.Sign() < 0:
		w.Byte(2)
		w.Bytes(v.Bytes())
	default:
		w.Byte(1)
		w.Bytes(v.Bytes())
	}
}

// readBig decodes writeBig's encoding. Borrowed reads: big.Int.SetBytes
// copies its operand.
func readBig(rd *wire.Reader) *big.Int {
	switch rd.Byte() {
	case 0:
		return nil
	case 2:
		return new(big.Int).Neg(new(big.Int).SetBytes(rd.BytesZC()))
	default:
		return new(big.Int).SetBytes(rd.BytesZC())
	}
}
