package convexagreement_test

import (
	"errors"
	"math/big"
	"sync"
	"testing"

	ca "convexagreement"
)

var (
	errNoTraffic    = errors.New("session mux reported no traffic")
	errReuseAllowed = errors.New("reopening a used session id succeeded")
)

// TestSessionMuxLocalCluster runs two concurrent agreement sessions of
// different shapes over one in-process cluster: session 1 spans all 4
// parties, session 2 only parties 0..1. Each must agree internally, and
// outputs must satisfy convex validity for that session's inputs.
func TestSessionMuxLocalCluster(t *testing.T) {
	const n = 4
	cluster, err := ca.NewLocalCluster(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	in1 := ints(3, -8, 12, 5)
	in2 := ints(100, 140)
	out1 := make([]*big.Int, n)
	out2 := make([]*big.Int, 2)
	errs := make([]error, 2*n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cluster[i].Close()
			sm := ca.NewSessionMux(cluster[i])
			// Both sessions must start on the same tick: open both before
			// driving either.
			mt1, err := sm.Open(1, n, 1)
			if err != nil {
				errs[i] = err
				return
			}
			var mt2 *ca.MuxedTransport
			if i < 2 {
				if mt2, err = sm.Open(2, 2, 0); err != nil {
					errs[i] = err
					return
				}
			}
			var iwg sync.WaitGroup
			iwg.Add(1)
			go func() {
				defer iwg.Done()
				defer mt1.Close()
				out1[i], errs[i] = ca.RunParty(mt1, ca.ProtoOptimal, 0, in1[i])
			}()
			if i < 2 {
				iwg.Add(1)
				go func() {
					defer iwg.Done()
					defer mt2.Close()
					out2[i], errs[n+i] = ca.RunParty(mt2, ca.ProtoOptimal, 0, in2[i])
				}()
			}
			iwg.Wait()
			// Peers' sessions may outlive ours; keep the tick clock until
			// every local session is done — here both finished, and other
			// parties still mid-protocol are synchronized by the base
			// transport's lock-step round, so no Idle loop is needed for
			// the in-process hub once this party's Close retires it.
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if out1[i].Cmp(out1[0]) != 0 {
			t.Fatalf("session 1 disagreement: %v vs %v", out1[i], out1[0])
		}
	}
	if out2[0].Cmp(out2[1]) != 0 {
		t.Fatalf("session 2 disagreement: %v vs %v", out2[0], out2[1])
	}
	if out1[0].Cmp(big.NewInt(-8)) < 0 || out1[0].Cmp(big.NewInt(12)) > 0 {
		t.Fatalf("session 1 output %v outside input hull", out1[0])
	}
	if out2[0].Cmp(big.NewInt(100)) < 0 || out2[0].Cmp(big.NewInt(140)) > 0 {
		t.Fatalf("session 2 output %v outside input hull", out2[0])
	}
}

// TestSessionMuxRunSession covers the one-call convenience wrapper and
// session-id reuse refusal through the public API.
func TestSessionMuxRunSession(t *testing.T) {
	const n = 3
	cluster, err := ca.NewLocalCluster(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := ints(1, 2, 3)
	outs := make([]*big.Int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cluster[i].Close()
			sm := ca.NewSessionMux(cluster[i])
			outs[i], errs[i] = sm.RunSession(7, n, 0, ca.ProtoOptimal, 0, inputs[i])
			if errs[i] != nil {
				return
			}
			if _, err := sm.Open(7, n, 0); err == nil {
				errs[i] = errReuseAllowed
				return
			}
			st := sm.Stats()
			if st.Ticks == 0 || st.Packets == 0 {
				errs[i] = errNoTraffic
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if outs[i].Cmp(outs[0]) != 0 {
			t.Fatalf("disagreement: %v vs %v", outs[i], outs[0])
		}
	}
}
