package gf16

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimitiveElementHasFullOrder(t *testing.T) {
	// x must generate the full multiplicative group: its powers must not
	// return to 1 before step Order.
	v := Elem(1)
	for i := 1; i < Order; i++ {
		v = MulNoTable(v, 2)
		if v == 1 {
			t.Fatalf("x has order %d < %d; reducing polynomial is not primitive", i, Order)
		}
	}
	v = MulNoTable(v, 2)
	if v != 1 {
		t.Fatalf("x^%d = %d, want 1", Order, v)
	}
}

func TestMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20000; trial++ {
		a := Elem(rng.Intn(1 << 16))
		b := Elem(rng.Intn(1 << 16))
		if got, want := Mul(a, b), MulNoTable(a, b); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	commutes := func(a, b uint16) bool {
		return Mul(Elem(a), Elem(b)) == Mul(Elem(b), Elem(a)) &&
			Add(Elem(a), Elem(b)) == Add(Elem(b), Elem(a))
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c uint16) bool {
		x, y, z := Elem(a), Elem(b), Elem(c)
		return Mul(Mul(x, y), z) == Mul(x, Mul(y, z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	distrib := func(a, b, c uint16) bool {
		x, y, z := Elem(a), Elem(b), Elem(c)
		return Mul(x, Add(y, z)) == Add(Mul(x, y), Mul(x, z))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error(err)
	}
}

func TestInvDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		a := Elem(rng.Intn(1<<16-1) + 1)
		if got := Mul(a, Inv(a)); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
		b := Elem(rng.Intn(1<<16-1) + 1)
		if got := Mul(Div(a, b), b); got != a {
			t.Fatalf("(a/b)·b = %d, want %d", got, a)
		}
	}
	if Inv(0) != 0 || Div(5, 0) != 0 || Div(0, 5) != 0 {
		t.Error("zero conventions violated")
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 || Pow(7, 0) != 1 || Pow(0, 5) != 0 {
		t.Error("pow edge cases wrong")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		a := Elem(rng.Intn(1 << 16))
		k := rng.Intn(20)
		want := Elem(1)
		for i := 0; i < k; i++ {
			want = Mul(want, a)
		}
		if got := Pow(a, k); got != want {
			t.Fatalf("Pow(%d,%d) = %d, want %d", a, k, got, want)
		}
	}
}

func TestIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 1000; trial++ {
		a := Elem(rng.Intn(1 << 16))
		if Mul(a, 1) != a {
			t.Fatalf("a·1 != a for %d", a)
		}
		if Add(a, 0) != a {
			t.Fatalf("a+0 != a for %d", a)
		}
		if Add(a, a) != 0 {
			t.Fatalf("a+a != 0 for %d (characteristic 2)", a)
		}
	}
}
