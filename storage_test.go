package convexagreement_test

// Session- and deployment-level storage-fault policy tests: the
// degrade-and-continue contract (a dying disk never costs the mesh a
// party), mirrored session checkpoints, and the fail-fast state-directory
// validation.

import (
	"errors"
	"math/big"
	"sync"
	"testing"

	ca "convexagreement"
	"convexagreement/internal/checkpoint"
	"convexagreement/internal/errfs"
)

// TestSessionDegradeAndContinue kills party 0's disk mid-session
// (permanent EIO after a fixed op budget) and asserts the degraded party
// KEEPS PARTICIPATING: every instance still agrees across all parties,
// Seq advances, and the condition is surfaced through StorageErr — not as
// a poisoned session.
func TestSessionDegradeAndContinue(t *testing.T) {
	const n, instances = 4, 3
	locals, err := ca.NewLocalCluster(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := errfs.NewMem(errfs.Faults{OpEIOAfter: 40}) // dies mid-instance 0

	var (
		wg   sync.WaitGroup
		outs [n][instances]*big.Int
		errs [n]error
		sErr error
	)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer locals[i].Close()
			s := ca.NewSession(locals[i])
			if i == 0 {
				if err := s.CheckpointOpts("state", ca.StorageOptions{FS: mem}); err != nil {
					errs[i] = err
					return
				}
			}
			defer func() { _ = s.Close() }()
			for seq := 0; seq < instances; seq++ {
				out, err := s.Agree(ca.ProtoOptimal, 0, big.NewInt(int64(10*seq+i+1)))
				if err != nil {
					errs[i] = err
					return
				}
				outs[i][seq] = out
			}
			if i == 0 {
				sErr = s.StorageErr()
				if s.Seq() != uint64(instances) {
					errs[i] = errors.New("seq did not advance past degradation")
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("party %d: %v", i, errs[i])
		}
	}
	if !errors.Is(sErr, checkpoint.ErrStorageDegraded) {
		t.Fatalf("StorageErr = %v, want ErrStorageDegraded", sErr)
	}
	if mem.Ops() <= 40 {
		t.Fatalf("disk never died: only %d ops reached it", mem.Ops())
	}
	for seq := 0; seq < instances; seq++ {
		o := outs[0][seq]
		for i := 1; i < n; i++ {
			if outs[i][seq] == nil || outs[i][seq].Cmp(o) != 0 {
				t.Fatalf("instance %d: party %d disagrees (%v vs %v) — degradation broke agreement",
					seq, i, outs[i][seq], o)
			}
		}
		lo, hi := big.NewInt(int64(10*seq+1)), big.NewInt(int64(10*seq+n))
		if o.Cmp(lo) < 0 || o.Cmp(hi) > 0 {
			t.Fatalf("instance %d: output %v outside hull [%v, %v]", seq, o, lo, hi)
		}
	}
}

// TestSessionMirrorCheckpointRoundTrip checkpoints a session with the
// mirrored WAL, corrupts one copy, and asserts ResumeOpts recovers the
// complete state from the survivor.
func TestSessionMirrorCheckpointRoundTrip(t *testing.T) {
	mem := errfs.NewMem(errfs.Faults{})
	locals, err := ca.NewLocalCluster(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := ca.NewSession(locals[0])
	if err := s.CheckpointOpts("state", ca.StorageOptions{Mirror: true, FS: mem}); err != nil {
		t.Fatal(err)
	}
	var want [2]*big.Int
	for seq := 0; seq < 2; seq++ {
		if want[seq], err = s.Agree(ca.ProtoOptimal, 0, big.NewInt(int64(7*seq+3))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.StorageErr() != nil {
		t.Fatalf("healthy mirrored run reported %v", s.StorageErr())
	}

	// Both copies must exist and match.
	a, okA := mem.ReadFileRaw("state/wal")
	b, okB := mem.ReadFileRaw("state/wal2")
	if !okA || !okB || len(a) == 0 || len(a) != len(b) {
		t.Fatalf("mirror copies missing or uneven: %d vs %d bytes", len(a), len(b))
	}

	// Trash one copy completely; resume must still see the whole session.
	mem.WriteFileRaw("state/wal", []byte("not a wal at all"))
	st, err := ca.InspectStateOpts("state", ca.StorageOptions{Mirror: true, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 2 || st.Partial {
		t.Fatalf("recovered state %+v, want Seq=2 clean boundary", st)
	}
	locals2, err := ca.NewLocalCluster(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := ca.NewSession(locals2[0])
	if err := s2.ResumeOpts("state", ca.StorageOptions{Mirror: true, FS: mem}); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if s2.Seq() != 2 {
		t.Fatalf("resumed Seq = %d, want 2", s2.Seq())
	}
	out, err := s2.Agree(ca.ProtoOptimal, 0, big.NewInt(99))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cmp(big.NewInt(99)) != 0 {
		t.Fatalf("third instance output %v", out)
	}
}

// TestValidateStateDir covers the fail-fast startup checks: fresh
// directories pass and are created, unwritable storage is rejected with
// ErrStateDir, and a directory holding another mesh's state is rejected
// with the recorded and expected geometries in the message.
func TestValidateStateDir(t *testing.T) {
	t.Run("fresh dir passes and is created", func(t *testing.T) {
		mem := errfs.NewMem(errfs.Faults{})
		st, err := ca.ValidateStateDir("fresh/sub", 4, 1, ca.StorageOptions{FS: mem})
		if err != nil {
			t.Fatal(err)
		}
		if st.Seq != 0 || st.Partial {
			t.Fatalf("fresh dir state %+v", st)
		}
	})
	t.Run("real filesystem round trip", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := ca.ValidateStateDir(dir, 4, 1, ca.StorageOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("unwritable dir rejected", func(t *testing.T) {
		mem := errfs.NewMem(errfs.Faults{WriteEIOProb: 1})
		_, err := ca.ValidateStateDir("state", 4, 1, ca.StorageOptions{FS: mem})
		if !errors.Is(err, ca.ErrStateDir) {
			t.Fatalf("got %v, want ErrStateDir", err)
		}
	})
	t.Run("dead disk rejected", func(t *testing.T) {
		mem := errfs.NewMem(errfs.Faults{OpEIOAfter: 1})
		_, err := ca.ValidateStateDir("state", 4, 1, ca.StorageOptions{FS: mem})
		if !errors.Is(err, ca.ErrStateDir) {
			t.Fatalf("got %v, want ErrStateDir", err)
		}
	})
	t.Run("geometry mismatch rejected", func(t *testing.T) {
		mem := errfs.NewMem(errfs.Faults{})
		locals, err := ca.NewLocalCluster(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := ca.NewSession(locals[0])
		if err := s.CheckpointOpts("state", ca.StorageOptions{FS: mem}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := ca.ValidateStateDir("state", 1, 0, ca.StorageOptions{FS: mem}); err != nil {
			t.Fatalf("matching geometry rejected: %v", err)
		}
		_, err = ca.ValidateStateDir("state", 7, 2, ca.StorageOptions{FS: mem})
		if !errors.Is(err, ca.ErrStateDir) {
			t.Fatalf("got %v, want ErrStateDir", err)
		}
	})
}
