// Fixture for the bufownership analyzer: pooled wire.Frame lifetimes.
package bufownership

import (
	"convexagreement/internal/wire"
)

func sink([]byte)    {}
func sinkErr() error { return nil }

// doubleRelease: two sequential Releases of the same frame.
func doubleRelease(a *wire.Arena) {
	f := a.Buffer(64)
	f.Release()
	f.Release() // want `frame f released twice`
}

// useAfterRelease: touching the frame (or its buffer) after Release.
func useAfterRelease(a *wire.Arena) {
	f := a.Buffer(64)
	sink(f.Bytes())
	f.Release()
	sink(f.Bytes()) // want `frame f used after Release`
}

// deferThenUse: a deferred Release fires at function exit, so later uses
// are legal — but a second Release is still a double release.
func deferThenUse(a *wire.Arena) {
	f := a.Buffer(64)
	defer f.Release()
	sink(f.Bytes()) // ok: the deferred Release has not fired yet
	f.Release()     // want `frame f released twice`
}

// reassignment: binding the variable to a fresh frame restarts tracking.
func reassignment(a *wire.Arena) {
	f := a.Buffer(64)
	f.Release()
	f = a.Buffer(128)
	sink(f.Bytes()) // ok: new frame
	f.Release()     // ok: first Release of the new frame
}

// branches: a Release inside one branch must not poison the other, but
// the branch's own continuation sees it.
func branches(a *wire.Arena, cond bool) {
	f := a.Buffer(64)
	if cond {
		f.Release()
		sink(f.Bytes()) // want `frame f used after Release`
	} else {
		sink(f.Bytes()) // ok: this arm did not release
	}
}

// fields: selector expressions are tracked like plain identifiers.
type holder struct {
	hdr *wire.Frame
}

func fields(h *holder) {
	h.hdr.Release()
	sink(h.hdr.Bytes()) // want `frame h.hdr used after Release`
}

// goroutineReset: closure bodies run elsewhere and get fresh state; the
// handoff is the author's responsibility, not a static finding.
func goroutineReset(a *wire.Arena, done chan struct{}) {
	f := a.Buffer(64)
	go func() {
		sink(f.Bytes())
		f.Release()
		close(done)
	}()
}

// suppressed: a reasoned directive silences a pattern the flow
// approximation cannot prove safe.
func suppressed(a *wire.Arena) {
	f := a.Buffer(64)
	f.Release()
	//calint:ignore bufownership frame is refilled by the pool before any reader can observe it in this single-threaded fixture
	sink(f.Bytes())
}

// otherRelease: Release methods on unrelated types are not frames.
type notAFrame struct{}

func (notAFrame) Release() {}

func otherRelease() {
	var x notAFrame
	x.Release()
	x.Release() // ok: not a wire.Frame
}
