package supervisor

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"convexagreement/internal/checkpoint"
)

func storageCfg() Config {
	return Config{
		Delta:       5 * time.Millisecond,
		StallRounds: 100,
		MaxRestarts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  time.Millisecond,
	}
}

// TestDegradedStorageIsNotTerminal: a party reporting degraded storage
// that SUCCEEDS must return success with the condition in Health — the
// degrade-and-continue policy means impaired durability is an annotation,
// not a failure.
func TestDegradedStorageIsNotTerminal(t *testing.T) {
	degraded := fmt.Errorf("%w: copy wal2: injected", checkpoint.ErrStorageDegraded)
	health, err := Run(storageCfg(), func(a *Attempt) error {
		a.ReportStorage(degraded)
		return nil
	})
	if err != nil {
		t.Fatalf("degraded-but-successful party failed the run: %v", err)
	}
	if !errors.Is(health.Storage, checkpoint.ErrStorageDegraded) {
		t.Fatalf("Health.Storage = %v", health.Storage)
	}
	if s := health.String(); !strings.Contains(s, "storage=degraded") {
		t.Fatalf("health line %q missing storage=degraded", s)
	}
}

// TestDegradedStorageStillRestarts: a party that fails for an unrelated
// reason while degraded burns the normal restart budget — degradation
// does not short-circuit triage.
func TestDegradedStorageStillRestarts(t *testing.T) {
	degraded := fmt.Errorf("%w: copy wal: injected", checkpoint.ErrStorageDegraded)
	runs := 0
	health, err := Run(storageCfg(), func(a *Attempt) error {
		runs++
		a.ReportStorage(degraded)
		if runs < 3 {
			return errors.New("transient network failure")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("party never allowed to retry: %v", err)
	}
	if health.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", health.Attempts)
	}
}

// TestStorageLostFailsFast: a party that fails while reporting storage
// LOST gets the typed terminal error on the first attempt — no restart
// can resurrect a dead state directory.
func TestStorageLostFailsFast(t *testing.T) {
	lost := fmt.Errorf("%w: every WAL copy failed", checkpoint.ErrStorageLost)
	health, err := Run(storageCfg(), func(a *Attempt) error {
		a.ReportStorage(lost)
		return errors.New("session resume failed")
	})
	if !errors.Is(err, ErrStorageLost) {
		t.Fatalf("got %v, want ErrStorageLost", err)
	}
	if health.Attempts != 1 {
		t.Fatalf("burned %d attempts against a dead disk, want 1", health.Attempts)
	}
	if s := health.String(); !strings.Contains(s, "storage=lost") {
		t.Fatalf("health line %q missing storage=lost", s)
	}
}

// TestStorageLostInPartyError: the fail-fast also triggers when the LOST
// condition arrives as the party's returned error chain (e.g. Resume
// failing before any ReportStorage call).
func TestStorageLostInPartyError(t *testing.T) {
	health, err := Run(storageCfg(), func(a *Attempt) error {
		return fmt.Errorf("resume: %w", checkpoint.ErrStorageLost)
	})
	if !errors.Is(err, ErrStorageLost) {
		t.Fatalf("got %v, want ErrStorageLost", err)
	}
	var he *HealthError
	if !errors.As(err, &he) {
		t.Fatal("terminal error missing Health")
	}
	if health.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", health.Attempts)
	}
}
